// Package hash64 holds the one 64-bit mixing primitive the hot paths
// share: the splitmix64 finalizer. Signature schemes built on it (edge
// sets, sat bitsets, relational rows) live with their data structures;
// keeping the mixer in one place keeps its constants in one place.
package hash64

// Mix is the splitmix64 finalizer: a cheap bijective mixer whose output
// bits all depend on all input bits. Collisions of schemes built on it
// must be handled by the caller (every user verifies identities behind
// the hash).
func Mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
