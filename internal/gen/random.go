package gen

import (
	"fmt"
	"math/rand"

	"ctpquery/internal/graph"
)

// Random builds a connected random graph with n nodes and at least e edges
// (a spanning tree is added first so the graph is connected, then random
// extra edges up to e). Edge labels are drawn from labels; directions are
// random, exercising bidirectional traversal. Used by property-based tests
// that cross-check algorithm completeness.
func Random(n, e int, labels []string, rng *rand.Rand) *graph.Graph {
	if n < 1 {
		panic("gen: Random needs n >= 1")
	}
	if len(labels) == 0 {
		labels = []string{"t"}
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i))
	}
	pick := func() string { return labels[rng.Intn(len(labels))] }
	// Random spanning tree: attach node i to a random earlier node.
	for i := 1; i < n; i++ {
		j := graph.NodeID(rng.Intn(i))
		if rng.Intn(2) == 0 {
			b.AddEdge(j, pick(), graph.NodeID(i))
		} else {
			b.AddEdge(graph.NodeID(i), pick(), j)
		}
	}
	for b.NumEdges() < e {
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		b.AddEdge(s, pick(), d)
	}
	return b.Build()
}

// RandomSeedSets samples m disjoint singleton-or-small seed sets over g's
// nodes. maxSize bounds each set's size (>= 1); sizes shrink automatically
// when the graph runs low on unused nodes, so every set still receives at
// least one node. It panics when the graph has fewer than m nodes.
func RandomSeedSets(g *graph.Graph, m, maxSize int, rng *rand.Rand) [][]graph.NodeID {
	if m > g.NumNodes() {
		panic(fmt.Sprintf("gen: RandomSeedSets needs %d distinct nodes, graph has %d",
			m, g.NumNodes()))
	}
	used := make(map[graph.NodeID]bool)
	sets := make([][]graph.NodeID, 0, m)
	for i := 0; i < m; i++ {
		// Leave at least one unused node for each of the remaining sets.
		free := g.NumNodes() - len(used)
		cap := free - (m - i - 1)
		if cap > maxSize {
			cap = maxSize
		}
		size := 1
		if cap > 1 {
			size = 1 + rng.Intn(cap)
		}
		var set []graph.NodeID
		for len(set) < size {
			n := graph.NodeID(rng.Intn(g.NumNodes()))
			if used[n] {
				continue
			}
			used[n] = true
			set = append(set, n)
		}
		sets = append(sets, set)
	}
	return sets
}
