package gen

import (
	"math/rand"
	"testing"

	"ctpquery/internal/graph"
)

func TestLineCounts(t *testing.T) {
	for _, m := range []int{2, 3, 5, 10} {
		for _, nL := range []int{1, 4, 9} {
			w := Line(m, nL, Forward)
			wantEdges := (m - 1) * (nL + 1)
			if w.Graph.NumEdges() != wantEdges {
				t.Fatalf("%s: edges = %d, want %d", w.Name, w.Graph.NumEdges(), wantEdges)
			}
			wantNodes := m + (m-1)*nL
			if w.Graph.NumNodes() != wantNodes {
				t.Fatalf("%s: nodes = %d, want %d", w.Name, w.Graph.NumNodes(), wantNodes)
			}
			if w.M() != m {
				t.Fatalf("%s: seeds = %d", w.Name, w.M())
			}
			if s := graph.ComputeStats(w.Graph); s.Components != 1 {
				t.Fatalf("%s: %d components", w.Name, s.Components)
			}
		}
	}
}

func TestLineSeedLabels(t *testing.T) {
	w := Line(3, 1, Forward)
	for i, want := range []string{"A", "B", "C"} {
		if got := w.Graph.NodeLabel(w.Seeds[i][0]); got != want {
			t.Fatalf("seed %d labeled %q, want %q", i, got, want)
		}
	}
}

func TestSeedLabelSpreadsheet(t *testing.T) {
	cases := map[int]string{0: "A", 25: "Z", 26: "AA", 27: "AB", 51: "AZ", 52: "BA"}
	for i, want := range cases {
		if got := seedLabel(i); got != want {
			t.Fatalf("seedLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestStarCounts(t *testing.T) {
	for _, m := range []int{2, 3, 5, 10} {
		for _, sL := range []int{1, 2, 5} {
			w := Star(m, sL, Forward)
			if w.Graph.NumEdges() != m*sL {
				t.Fatalf("%s: edges = %d, want %d", w.Name, w.Graph.NumEdges(), m*sL)
			}
			if w.Graph.NumNodes() != 1+m*sL {
				t.Fatalf("%s: nodes = %d, want %d", w.Name, w.Graph.NumNodes(), 1+m*sL)
			}
			center, ok := w.Graph.NodeByLabel("center")
			if !ok || w.Graph.Degree(center) != m {
				t.Fatalf("%s: center degree wrong", w.Name)
			}
		}
	}
}

func TestCombCounts(t *testing.T) {
	for _, tc := range []struct{ nA, nS, sL, dBA int }{
		{2, 2, 2, 2}, {3, 1, 2, 3}, {4, 2, 3, 2}, {6, 2, 5, 2},
	} {
		w := Comb(tc.nA, tc.nS, tc.sL, tc.dBA, Forward)
		wantSeeds := tc.nA * (tc.nS + 1)
		if w.M() != wantSeeds {
			t.Fatalf("%s: m = %d, want %d", w.Name, w.M(), wantSeeds)
		}
		wantEdges := (tc.nA-1)*(tc.dBA+1) + tc.nA*tc.nS*tc.sL
		if w.Graph.NumEdges() != wantEdges {
			t.Fatalf("%s: edges = %d, want %d", w.Name, w.Graph.NumEdges(), wantEdges)
		}
		if s := graph.ComputeStats(w.Graph); s.Components != 1 {
			t.Fatalf("%s: %d components", w.Name, s.Components)
		}
		// Each seed must be distinct.
		seen := map[graph.NodeID]bool{}
		for _, ss := range w.Seeds {
			if seen[ss[0]] {
				t.Fatalf("%s: duplicate seed %d", w.Name, ss[0])
			}
			seen[ss[0]] = true
		}
	}
}

func TestChainCounts(t *testing.T) {
	w := Chain(5)
	if w.Graph.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", w.Graph.NumNodes())
	}
	if w.Graph.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10 (2 per gap)", w.Graph.NumEdges())
	}
	if w.M() != 2 {
		t.Fatalf("chain CTP has 2 seed sets")
	}
}

func TestAlternateDirectionFlips(t *testing.T) {
	fw := Line(2, 3, Forward)
	alt := Line(2, 3, Alternate)
	if fw.Graph.NumEdges() != alt.Graph.NumEdges() {
		t.Fatal("direction must not change edge count")
	}
	// Forward: all edges leave the A side; Alternate: some flipped.
	flipped := 0
	for i := 0; i < alt.Graph.NumEdges(); i++ {
		if alt.Graph.Source(graph.EdgeID(i)) != fw.Graph.Source(graph.EdgeID(i)) {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("Alternate produced no flipped edges")
	}
}

func TestCDFCountsM2(t *testing.T) {
	for _, tc := range []struct{ nt, nl, sl int }{{2, 2, 3}, {8, 6, 3}, {8, 6, 6}} {
		c := NewCDF(2, tc.nt, tc.nl, tc.sl)
		wantEdges := 12*tc.nt + tc.nl*tc.sl
		if c.Graph.NumEdges() != wantEdges {
			t.Fatalf("%s: edges = %d, want %d", c.Name(), c.Graph.NumEdges(), wantEdges)
		}
		wantNodes := 14*tc.nt + tc.nl*(tc.sl-1)
		if c.Graph.NumNodes() != wantNodes {
			t.Fatalf("%s: nodes = %d, want %d", c.Name(), c.Graph.NumNodes(), wantNodes)
		}
		if len(c.Links) != tc.nl {
			t.Fatalf("%s: links = %d", c.Name(), len(c.Links))
		}
		// Eligible leaves: 50% of the c-top leaves and 50% of g-bottoms.
		if len(c.TopLeaves) != tc.nt || len(c.BottomG) != tc.nt {
			t.Fatalf("%s: eligibility: top=%d bottomG=%d, want %d each",
				c.Name(), len(c.TopLeaves), len(c.BottomG), tc.nt)
		}
	}
}

func TestCDFCountsM3(t *testing.T) {
	for _, tc := range []struct{ nt, nl, sl int }{{2, 2, 3}, {8, 6, 3}, {4, 8, 6}} {
		c := NewCDF(3, tc.nt, tc.nl, tc.sl)
		wantEdges := 12*tc.nt + tc.nl*tc.sl
		if c.Graph.NumEdges() != wantEdges {
			t.Fatalf("%s: edges = %d, want %d", c.Name(), c.Graph.NumEdges(), wantEdges)
		}
		// Y-links add SL-2 fresh nodes each (stem intermediates + fork);
		// see the NewCDF doc comment for the deviation from the paper's
		// stated NL*SL node count.
		wantNodes := 14*tc.nt + tc.nl*(tc.sl-2)
		if c.Graph.NumNodes() != wantNodes {
			t.Fatalf("%s: nodes = %d, want %d", c.Name(), c.Graph.NumNodes(), wantNodes)
		}
		for _, link := range c.Links {
			if len(link) != 3 {
				t.Fatalf("m=3 link should have 3 endpoints, got %v", link)
			}
			// The two bottom leaves must be siblings: share a parent with
			// a g and an h edge.
			b1, b2 := link[1], link[2]
			var p1, p2 graph.NodeID
			for _, e := range c.Graph.In(b1) {
				if c.Graph.EdgeLabel(e) == "g" {
					p1 = c.Graph.Source(e)
				}
			}
			for _, e := range c.Graph.In(b2) {
				if c.Graph.EdgeLabel(e) == "h" {
					p2 = c.Graph.Source(e)
				}
			}
			if p1 != p2 {
				t.Fatalf("link bottoms %d,%d not siblings (parents %d,%d)", b1, b2, p1, p2)
			}
		}
	}
}

func TestCDFLabels(t *testing.T) {
	c := NewCDF(2, 2, 2, 3)
	for _, l := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "link"} {
		if _, ok := c.Graph.LabelIDOf(l); !ok {
			t.Fatalf("label %q missing", l)
		}
	}
	// Top leaves must be targets of c edges.
	for _, tl := range c.TopLeaves {
		ok := false
		for _, e := range c.Graph.In(tl) {
			if c.Graph.EdgeLabel(e) == "c" {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("top leaf %d is not a c-target", tl)
		}
	}
}

func TestCDFPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCDF(4, 1, 1, 3) },
		func() { NewCDF(3, 1, 1, 2) },
		func() { NewCDF(2, 0, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestSampleGraph(t *testing.T) {
	g := Sample()
	if g.NumNodes() != 12 || g.NumEdges() != 19 {
		t.Fatalf("sample: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// The motivating tree t_alpha = {e10, e9, e11} must exist: Carole
	// founded OrgC, Doug investsIn OrgC, Elon parentOf Doug.
	carole, _ := g.NodeByLabel("Carole")
	orgc, _ := g.NodeByLabel("OrgC")
	doug, _ := g.NodeByLabel("Doug")
	elon, _ := g.NodeByLabel("Elon")
	found := 0
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		switch {
		case e.Source == carole && e.Target == orgc && g.EdgeLabel(graph.EdgeID(i)) == "founded":
			found++
		case e.Source == doug && e.Target == orgc && g.EdgeLabel(graph.EdgeID(i)) == "investsIn":
			found++
		case e.Source == elon && e.Target == doug && g.EdgeLabel(graph.EdgeID(i)) == "parentOf":
			found++
		}
	}
	if found != 3 {
		t.Fatalf("t_alpha edges found = %d, want 3", found)
	}
	if s := graph.ComputeStats(g); s.Components != 1 {
		t.Fatal("sample graph must be connected")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		e := n + rng.Intn(30)
		g := Random(n, e, []string{"x", "y"}, rng)
		if g.NumNodes() != n {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
		}
		if g.NumEdges() < n-1 || g.NumEdges() < e {
			t.Fatalf("edges = %d, want >= max(%d,%d)", g.NumEdges(), n-1, e)
		}
		if s := graph.ComputeStats(g); s.Components != 1 {
			t.Fatalf("random graph disconnected: %s", s)
		}
	}
}

func TestRandomSeedSetsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Random(50, 80, nil, rng)
	sets := RandomSeedSets(g, 4, 3, rng)
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range sets {
		if len(s) < 1 || len(s) > 3 {
			t.Fatalf("bad set size %d", len(s))
		}
		for _, n := range s {
			if seen[n] {
				t.Fatalf("node %d in two seed sets", n)
			}
			seen[n] = true
		}
	}
}

func TestKGGeneration(t *testing.T) {
	kg := YAGOLike(100, 1)
	g := kg.Graph
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty KG")
	}
	for _, typ := range []string{"person", "organization", "city", "country", "work"} {
		id, ok := g.LabelIDOf(typ)
		if !ok || len(g.NodesWithType(id)) == 0 {
			t.Fatalf("no %s nodes", typ)
		}
	}
	if len(kg.People) != 200 {
		t.Fatalf("people = %d, want 200", len(kg.People))
	}
	// Determinism: same seed, same graph.
	kg2 := YAGOLike(100, 1)
	if kg2.Graph.NumEdges() != g.NumEdges() {
		t.Fatal("KG generation not deterministic")
	}
	kg3 := YAGOLike(100, 2)
	if kg3.Graph.NumEdges() == g.NumEdges() {
		t.Log("different seeds produced same edge count (possible but unlikely)")
	}
}

func TestDBPediaLikeDenser(t *testing.T) {
	a := YAGOLike(200, 1)
	b := DBPediaLike(200, 1)
	da := float64(a.Graph.NumEdges()) / float64(a.Graph.NumNodes())
	db := float64(b.Graph.NumEdges()) / float64(b.Graph.NumNodes())
	if db <= da {
		t.Fatalf("DBPediaLike density %.2f should exceed YAGOLike %.2f", db, da)
	}
}

func TestCTPWorkloadHistogram(t *testing.T) {
	kg := DBPediaLike(100, 3)
	rng := rand.New(rand.NewSource(9))
	wl := CTPWorkload(kg, MHistogram, 10, rng)
	for m := 2; m <= 6; m++ {
		qs := wl[m]
		want := MHistogram[m] / 10
		if want < 1 {
			want = 1
		}
		if len(qs) != want {
			t.Fatalf("m=%d: %d queries, want %d", m, len(qs), want)
		}
		for _, sets := range qs {
			if len(sets) != m {
				t.Fatalf("m=%d: query has %d seed sets", m, len(sets))
			}
		}
	}
}
