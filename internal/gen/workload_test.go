package gen

import (
	"math/rand"
	"testing"

	"ctpquery/internal/graph"
)

func TestConnectableCTPWorkload(t *testing.T) {
	kg := DBPediaLike(150, 11)
	g := kg.Graph
	rng := rand.New(rand.NewSource(13))
	wl := ConnectableCTPWorkload(kg, MHistogram, 20, 3, rng)

	reaches := func(root graph.NodeID, target graph.NodeID, maxDist int) bool {
		frontier := []graph.NodeID{root}
		seen := map[graph.NodeID]bool{root: true}
		for d := 0; d < maxDist; d++ {
			var next []graph.NodeID
			for _, n := range frontier {
				for _, e := range g.Out(n) {
					o := g.Target(e)
					if o == target {
						return true
					}
					if !seen[o] {
						seen[o] = true
						next = append(next, o)
					}
				}
			}
			frontier = next
		}
		return false
	}

	total := 0
	for m := 2; m <= 6; m++ {
		queries := wl[m]
		want := MHistogram[m] / 20
		if want < 1 {
			want = 1
		}
		if len(queries) != want {
			t.Fatalf("m=%d: %d queries, want %d", m, len(queries), want)
		}
		total += len(queries)
		for qi, sets := range queries {
			if len(sets) != m {
				t.Fatalf("m=%d q=%d: %d seed sets", m, qi, len(sets))
			}
			used := map[graph.NodeID]bool{}
			for _, s := range sets {
				if len(s) != 1 {
					t.Fatalf("m=%d q=%d: non-singleton seed set", m, qi)
				}
				if used[s[0]] {
					t.Fatalf("m=%d q=%d: duplicate seed %d", m, qi, s[0])
				}
				used[s[0]] = true
			}
			// Connectability: some node reaches every seed within the walk
			// bound. The sampler guarantees the walk root qualifies; verify
			// by searching for any witness.
			witness := false
			for cand := 0; cand < g.NumNodes() && !witness; cand++ {
				all := true
				for _, s := range sets {
					if graph.NodeID(cand) != s[0] && !reaches(graph.NodeID(cand), s[0], 3) {
						all = false
						break
					}
				}
				witness = all
			}
			if !witness {
				t.Fatalf("m=%d q=%d: no directed root reaches all seeds", m, qi)
			}
		}
	}
	if total == 0 {
		t.Fatal("empty workload")
	}
}

func TestConnectableCTPWorkloadDeterministic(t *testing.T) {
	kg := DBPediaLike(100, 3)
	a := ConnectableCTPWorkload(kg, map[int]int{2: 4}, 1, 3, rand.New(rand.NewSource(9)))
	b := ConnectableCTPWorkload(kg, map[int]int{2: 4}, 1, 3, rand.New(rand.NewSource(9)))
	if len(a[2]) != len(b[2]) {
		t.Fatal("non-deterministic count")
	}
	for i := range a[2] {
		for j := range a[2][i] {
			if a[2][i][j][0] != b[2][i][j][0] {
				t.Fatal("non-deterministic seeds")
			}
		}
	}
}
