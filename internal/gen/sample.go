package gen

import "ctpquery/internal/graph"

// Sample builds the running-example graph of the paper's Figure 1: twelve
// nodes (two American and two French entrepreneurs, three companies, two
// countries, two politicians, and a party literal) and nineteen labeled
// edges. It is used throughout examples and tests.
func Sample() *graph.Graph {
	b := graph.NewBuilder()
	type nd struct{ label, typ string }
	nodes := []nd{
		{"OrgB", "company"},            // n1
		{"Bob", "entrepreneur"},        // n2
		{"Alice", "entrepreneur"},      // n3
		{"Carole", "entrepreneur"},     // n4
		{"OrgA", "company"},            // n5
		{"Doug", "entrepreneur"},       // n6
		{"OrgC", "company"},            // n7
		{"France", "country"},          // n8
		{"Elon", "politician"},         // n9
		{"USA", "country"},             // n10
		{"National Liberal Party", ""}, // n11 (literal)
		{"Falcon", "politician"},       // n12
	}
	ids := make(map[string]graph.NodeID, len(nodes))
	for _, n := range nodes {
		id := b.AddNode(n.label)
		if n.typ != "" {
			b.AddType(id, n.typ)
		}
		ids[n.label] = id
	}
	// The nineteen edges e1..e19 in the paper's numbering and orientation.
	edges := []struct{ s, l, d string }{
		{"Bob", "founded", "OrgB"},                          // e1
		{"OrgB", "investsIn", "OrgA"},                       // e2
		{"Bob", "parentOf", "Alice"},                        // e3
		{"OrgA", "locatedIn", "France"},                     // e4
		{"Alice", "citizenOf", "France"},                    // e5
		{"Carole", "citizenOf", "USA"},                      // e6
		{"Carole", "founded", "OrgA"},                       // e7
		{"Doug", "CEO", "OrgA"},                             // e8
		{"Doug", "investsIn", "OrgC"},                       // e9
		{"Carole", "founded", "OrgC"},                       // e10
		{"Elon", "parentOf", "Doug"},                        // e11
		{"Doug", "citizenOf", "France"},                     // e12
		{"Elon", "citizenOf", "France"},                     // e13
		{"Bob", "citizenOf", "USA"},                         // e14
		{"OrgC", "locatedIn", "USA"},                        // e15
		{"Elon", "affiliation", "National Liberal Party"},   // e16
		{"OrgA", "funds", "National Liberal Party"},         // e17
		{"Falcon", "affiliation", "National Liberal Party"}, // e18
		{"Falcon", "investsIn", "OrgC"},                     // e19
	}
	for _, e := range edges {
		b.AddEdge(ids[e.s], e.l, ids[e.d])
	}
	return b.Build()
}
