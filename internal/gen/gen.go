// Package gen builds the workloads of the paper's experimental evaluation
// (Section 5.3): the parameterized synthetic graphs Line, Comb, Star (Figure
// 8), the chain graph with exponentially many connections (Figure 2), the
// Connected Dense Forest (CDF) benchmark (Figure 9), the running-example
// graph of Figure 1, plus synthetic stand-ins for the YAGO3 and DBPedia
// subsets used in Sections 5.4.3 and 5.5.2 (see DESIGN.md §3 for the
// substitution rationale).
package gen

import (
	"fmt"

	"ctpquery/internal/graph"
)

// Workload bundles a generated graph with the seed sets of the CTP the
// paper runs on it. Every synthetic workload of Figure 8 uses singleton
// seed sets labeled A, B, C, ...
type Workload struct {
	Graph *graph.Graph
	Seeds [][]graph.NodeID
	Name  string
}

// M returns the number of seed sets.
func (w *Workload) M() int { return len(w.Seeds) }

// seedLabel returns spreadsheet-style seed names A..Z, AA.. for i >= 0.
func seedLabel(i int) string {
	s := ""
	for {
		s = string(rune('A'+i%26)) + s
		i = i/26 - 1
		if i < 0 {
			return s
		}
	}
}

// Direction controls how generated edges are oriented. The paper's CTP
// semantics is direction-agnostic (requirement R3), but UNI experiments and
// the directed baselines care.
type Direction int

const (
	// Forward orients every edge from the seed side toward the next node.
	Forward Direction = iota
	// Alternate flips the orientation of every second edge, exercising
	// bidirectional traversal.
	Alternate
)

// edgeAdder appends path edges honoring a Direction; i is a running edge
// counter used by Alternate.
type edgeAdder struct {
	b   *graph.Builder
	dir Direction
	i   int
}

func (a *edgeAdder) add(from, to graph.NodeID, label string) graph.EdgeID {
	a.i++
	if a.dir == Alternate && a.i%2 == 0 {
		return a.b.AddEdge(to, label, from)
	}
	return a.b.AddEdge(from, label, to)
}

// path adds a path of length edges from node `from` to a fresh endpoint,
// returning the endpoint. Intermediate nodes get numeric labels from the
// counter.
func (a *edgeAdder) path(from graph.NodeID, length int, counter *int, endLabel string) graph.NodeID {
	cur := from
	for i := 0; i < length; i++ {
		var next graph.NodeID
		if i == length-1 && endLabel != "" {
			next = a.b.AddNode(endLabel)
		} else {
			*counter++
			next = a.b.AddNode(fmt.Sprintf("%d", *counter))
		}
		a.add(cur, next, "t")
		cur = next
	}
	return cur
}

// Line builds Line(m, nL): m singleton seeds, consecutive seeds connected
// through nL intermediary nodes (sL = nL+1 edges between seeds). The CTP
// defined by the m seeds has exactly one result: the whole line.
func Line(m, nL int, dir Direction) *Workload {
	if m < 2 {
		panic("gen: Line needs m >= 2")
	}
	b := graph.NewBuilder()
	a := &edgeAdder{b: b, dir: dir}
	counter := 0
	seeds := make([][]graph.NodeID, 0, m)
	prev := b.AddNode(seedLabel(0))
	seeds = append(seeds, []graph.NodeID{prev})
	for i := 1; i < m; i++ {
		s := a.path(prev, nL+1, &counter, seedLabel(i))
		seeds = append(seeds, []graph.NodeID{s})
		prev = s
	}
	return &Workload{
		Graph: b.Build(),
		Seeds: seeds,
		Name:  fmt.Sprintf("Line(m=%d,nL=%d)", m, nL),
	}
}

// Star builds Star(m, sL): a central node connected to each of the m
// singleton seeds by a line of sL edges. Its unique CTP result is a
// (m, center) rooted merge (Definition 4.8).
func Star(m, sL int, dir Direction) *Workload {
	if m < 2 || sL < 1 {
		panic("gen: Star needs m >= 2, sL >= 1")
	}
	b := graph.NewBuilder()
	a := &edgeAdder{b: b, dir: dir}
	counter := 0
	center := b.AddNode("center")
	seeds := make([][]graph.NodeID, 0, m)
	for i := 0; i < m; i++ {
		s := a.path(center, sL, &counter, seedLabel(i))
		seeds = append(seeds, []graph.NodeID{s})
	}
	return &Workload{
		Graph: b.Build(),
		Seeds: seeds,
		Name:  fmt.Sprintf("Star(m=%d,sL=%d)", m, sL),
	}
}

// Comb builds Comb(nA, nS, sL, dBA): a main line carrying nA anchor seeds,
// dBA intermediary nodes between consecutive anchors, and from each anchor
// a lateral bristle of nS segments; each segment is a path of sL edges
// ending in another seed. The total number of seeds is m = nA*(nS+1) and
// the CTP over all of them has exactly one (2-piecewise-simple) result.
func Comb(nA, nS, sL, dBA int, dir Direction) *Workload {
	if nA < 1 || nS < 1 || sL < 1 || dBA < 0 {
		panic("gen: Comb needs nA,nS,sL >= 1 and dBA >= 0")
	}
	b := graph.NewBuilder()
	a := &edgeAdder{b: b, dir: dir}
	counter := 0
	seedNo := 0
	var seeds [][]graph.NodeID
	addSeed := func(n graph.NodeID) {
		seeds = append(seeds, []graph.NodeID{n})
		seedNo++
	}

	var prevAnchor graph.NodeID
	for i := 0; i < nA; i++ {
		anchor := b.AddNode(seedLabel(seedNo))
		addSeed(anchor)
		if i > 0 {
			// dBA intermediates => dBA+1 edges between anchors.
			mid := a.path(prevAnchor, dBA, &counter, "")
			a.add(mid, anchor, "t")
		}
		// The bristle: nS chained segments, each ending in a seed.
		cur := anchor
		for s := 0; s < nS; s++ {
			end := a.path(cur, sL, &counter, seedLabel(seedNo))
			addSeed(end)
			cur = end
		}
		prevAnchor = anchor
	}
	return &Workload{
		Graph: b.Build(),
		Seeds: seeds,
		Name:  fmt.Sprintf("Comb(nA=%d,nS=%d,sL=%d,dBA=%d)", nA, nS, sL, dBA),
	}
}

// Chain builds the Figure 2 chain: N+1 nodes in a row where every
// consecutive pair is connected by two parallel edges (labeled "a" and
// "b"). The CTP connecting the two end nodes has 2^N results — the
// motivating example for partial CTP evaluation and CTP filters.
func Chain(n int) *Workload {
	if n < 1 {
		panic("gen: Chain needs n >= 1")
	}
	b := graph.NewBuilder()
	first := b.AddNode("1")
	prev := first
	for i := 1; i <= n; i++ {
		next := b.AddNode(fmt.Sprintf("%d", i+1))
		b.AddEdge(prev, "a", next)
		b.AddEdge(prev, "b", next)
		prev = next
	}
	return &Workload{
		Graph: b.Build(),
		Seeds: [][]graph.NodeID{{first}, {prev}},
		Name:  fmt.Sprintf("Chain(N=%d)", n),
	}
}
