package gen

import (
	"fmt"
	"math/rand"

	"ctpquery/internal/graph"
)

// This file provides synthetic stand-ins for the real-world datasets used
// in the paper's evaluation: a 6M-triple YAGO3 subset (Section 5.5.2,
// Table 1) and an 18M-triple DBPedia subset (Section 5.4.3, Figure 12).
// We cannot ship those datasets, so we generate heterogeneous knowledge-
// graph-shaped data with the same structural features the experiments
// exercise: entity types with skewed populations, a mix of hub and leaf
// entities, typed relations, and literal-valued attributes. DESIGN.md §3
// documents the substitution.

// KGConfig parameterizes the synthetic knowledge-graph generator.
type KGConfig struct {
	People int // person entities
	Orgs   int // organization entities
	Places int // place entities (includes a small country layer)
	Works  int // creative-work entities
	Seed   int64
	// ExtraEdgesPerNode adds heterogeneity: each entity receives this many
	// extra random relations on average (preferentially to hubs).
	ExtraEdgesPerNode float64
}

// KG is a generated knowledge graph plus handles benchmarks need.
type KG struct {
	Graph     *graph.Graph
	People    []graph.NodeID
	Orgs      []graph.NodeID
	Places    []graph.NodeID
	Works     []graph.NodeID
	Countries []graph.NodeID
}

// relation labels by category pair.
var (
	personPerson = []string{"knows", "spouse", "parentOf", "colleague"}
	personOrg    = []string{"worksFor", "founded", "memberOf", "owns"}
	personPlace  = []string{"bornIn", "livesIn", "citizenOf"}
	personWork   = []string{"created", "actedIn", "wrote"}
	orgPlace     = []string{"locatedIn", "headquarteredIn"}
	orgOrg       = []string{"subsidiaryOf", "partnerOf", "investsIn"}
	workWork     = []string{"basedOn", "sequelOf"}
)

// NewKG generates a synthetic knowledge graph. The result is connected via
// the place hierarchy: every place is linked to one of a few country hubs,
// and every other entity carries at least one place-anchored relation.
func NewKG(cfg KGConfig) *KG {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	kg := &KG{}

	nCountries := cfg.Places/20 + 2
	for i := 0; i < nCountries; i++ {
		n := b.AddNode(fmt.Sprintf("country%d", i))
		b.AddType(n, "country")
		b.AddType(n, "place")
		kg.Countries = append(kg.Countries, n)
		kg.Places = append(kg.Places, n)
	}
	for i := 0; i < cfg.Places; i++ {
		n := b.AddNode(fmt.Sprintf("city%d", i))
		b.AddType(n, "city")
		b.AddType(n, "place")
		b.AddEdge(n, "inCountry", kg.Countries[rng.Intn(len(kg.Countries))])
		kg.Places = append(kg.Places, n)
	}
	for i := 0; i < cfg.Orgs; i++ {
		n := b.AddNode(fmt.Sprintf("org%d", i))
		b.AddType(n, "organization")
		b.AddEdge(n, orgPlace[rng.Intn(len(orgPlace))], kg.Places[rng.Intn(len(kg.Places))])
		kg.Orgs = append(kg.Orgs, n)
	}
	for i := 0; i < cfg.People; i++ {
		n := b.AddNode(fmt.Sprintf("person%d", i))
		b.AddType(n, "person")
		b.AddEdge(n, personPlace[rng.Intn(len(personPlace))], kg.Places[rng.Intn(len(kg.Places))])
		if len(kg.Orgs) > 0 && rng.Intn(2) == 0 {
			b.AddEdge(n, personOrg[rng.Intn(len(personOrg))], kg.Orgs[rng.Intn(len(kg.Orgs))])
		}
		kg.People = append(kg.People, n)
	}
	for i := 0; i < cfg.Works; i++ {
		n := b.AddNode(fmt.Sprintf("work%d", i))
		b.AddType(n, "work")
		if len(kg.People) > 0 {
			b.AddEdge(kg.People[rng.Intn(len(kg.People))], personWork[rng.Intn(len(personWork))], n)
		} else {
			b.AddEdge(n, "about", kg.Places[rng.Intn(len(kg.Places))])
		}
		kg.Works = append(kg.Works, n)
	}

	// Extra heterogeneous relations with mild preferential attachment:
	// half the endpoints are drawn from the first tenth of each category.
	pick := func(ns []graph.NodeID) graph.NodeID {
		if len(ns) == 0 {
			return kg.Places[rng.Intn(len(kg.Places))]
		}
		if hub := len(ns)/10 + 1; rng.Intn(2) == 0 {
			return ns[rng.Intn(hub)]
		}
		return ns[rng.Intn(len(ns))]
	}
	total := cfg.People + cfg.Orgs + cfg.Places + cfg.Works
	extra := int(cfg.ExtraEdgesPerNode * float64(total))
	for i := 0; i < extra; i++ {
		switch rng.Intn(7) {
		case 0:
			b.AddEdge(pick(kg.People), personPerson[rng.Intn(len(personPerson))], pick(kg.People))
		case 1:
			b.AddEdge(pick(kg.People), personOrg[rng.Intn(len(personOrg))], pick(kg.Orgs))
		case 2:
			b.AddEdge(pick(kg.People), personPlace[rng.Intn(len(personPlace))], pick(kg.Places))
		case 3:
			b.AddEdge(pick(kg.People), personWork[rng.Intn(len(personWork))], pick(kg.Works))
		case 4:
			b.AddEdge(pick(kg.Orgs), orgPlace[rng.Intn(len(orgPlace))], pick(kg.Places))
		case 5:
			b.AddEdge(pick(kg.Orgs), orgOrg[rng.Intn(len(orgOrg))], pick(kg.Orgs))
		case 6:
			b.AddEdge(pick(kg.Works), workWork[rng.Intn(len(workWork))], pick(kg.Works))
		}
	}
	kg.Graph = b.Build()
	return kg
}

// YAGOLike generates the Table 1 stand-in at the given scale (total
// entities ≈ 4*scale). Queries J1–J3 are built against it in
// internal/bench.
func YAGOLike(scale int, seed int64) *KG {
	return NewKG(KGConfig{
		People: 2 * scale, Orgs: scale / 2, Places: scale / 2, Works: scale,
		Seed: seed, ExtraEdgesPerNode: 2.0,
	})
}

// DBPediaLike generates the Figure 12 stand-in, slightly denser than
// YAGOLike, matching DBPedia's richer linkage.
func DBPediaLike(scale int, seed int64) *KG {
	return NewKG(KGConfig{
		People: 2 * scale, Orgs: scale, Places: scale / 2, Works: 2 * scale,
		Seed: seed, ExtraEdgesPerNode: 2.5,
	})
}

// MHistogram is the distribution of seed-set counts in the paper's
// DBPedia CTP workload: 83, 98, 85, 38, and 8 queries with m = 2..6
// (Section 5.4.3).
var MHistogram = map[int]int{2: 83, 3: 98, 4: 85, 5: 38, 6: 8}

// ConnectableCTPWorkload samples, for each (m -> count) histogram entry
// scaled by divisor, CTPs whose m singleton seeds all lie on directed
// walks of at most maxDist edges out of a common root node — so a
// unidirectional connecting tree is guaranteed to exist, as in keyword
// workloads derived from real queries (the Figure 12 protocol runs UNI
// with LIMIT 1 and needs connectable seeds to be meaningful).
func ConnectableCTPWorkload(kg *KG, hist map[int]int, divisor, maxDist int, rng *rand.Rand) map[int][][][]graph.NodeID {
	if divisor < 1 {
		divisor = 1
	}
	if maxDist < 1 {
		maxDist = 3
	}
	g := kg.Graph
	out := make(map[int][][][]graph.NodeID)
	walk := func(from graph.NodeID, steps int) graph.NodeID {
		at := from
		for i := 0; i < steps; i++ {
			outs := g.Out(at)
			if len(outs) == 0 {
				return at
			}
			at = g.Target(outs[rng.Intn(len(outs))])
		}
		return at
	}
	for m := 2; m <= 16; m++ {
		count, ok := hist[m]
		if !ok {
			continue
		}
		count /= divisor
		if count < 1 {
			count = 1
		}
		for q := 0; q < count; q++ {
			var sets [][]graph.NodeID
			for attempt := 0; attempt < 200 && sets == nil; attempt++ {
				root := graph.NodeID(rng.Intn(g.NumNodes()))
				if len(g.Out(root)) == 0 {
					continue
				}
				used := map[graph.NodeID]bool{}
				var cand [][]graph.NodeID
				for i := 0; i < m; i++ {
					var seed graph.NodeID
					okSeed := false
					for tries := 0; tries < 50; tries++ {
						seed = walk(root, 1+rng.Intn(maxDist))
						if seed != root && !used[seed] {
							okSeed = true
							break
						}
					}
					if !okSeed {
						cand = nil
						break
					}
					used[seed] = true
					cand = append(cand, []graph.NodeID{seed})
				}
				sets = cand
			}
			if sets == nil {
				continue // extremely sparse graph: skip this query
			}
			out[m] = append(out[m], sets)
		}
	}
	return out
}

// CTPWorkload samples, for each (m -> count) entry scaled down by the
// divisor (minimum 1 query per m), seed sets of singleton seeds drawn from
// the KG's entities. Returns one seed-set list per query, keyed by m in
// increasing order.
func CTPWorkload(kg *KG, hist map[int]int, divisor int, rng *rand.Rand) map[int][][][]graph.NodeID {
	if divisor < 1 {
		divisor = 1
	}
	pools := [][]graph.NodeID{kg.People, kg.Orgs, kg.Places, kg.Works}
	out := make(map[int][][][]graph.NodeID)
	ms := make([]int, 0, len(hist))
	for m := range hist {
		ms = append(ms, m)
	}
	// Deterministic iteration order over m for reproducibility.
	for m := 2; m <= 16; m++ {
		found := false
		for _, x := range ms {
			if x == m {
				found = true
			}
		}
		if !found {
			continue
		}
		count := hist[m] / divisor
		if count < 1 {
			count = 1
		}
		for q := 0; q < count; q++ {
			var sets [][]graph.NodeID
			used := make(map[graph.NodeID]bool)
			for i := 0; i < m; i++ {
				pool := pools[rng.Intn(len(pools))]
				for {
					n := pool[rng.Intn(len(pool))]
					if !used[n] {
						used[n] = true
						sets = append(sets, []graph.NodeID{n})
						break
					}
				}
			}
			out[m] = append(out[m], sets)
		}
	}
	return out
}
