package gen

import (
	"fmt"

	"ctpquery/internal/graph"
)

// CDF holds a generated Connected Dense Forest benchmark graph (Section
// 5.3, Figure 9) along with the node groups the EQL benchmark queries bind.
type CDF struct {
	Graph *graph.Graph
	// TopLeaves are the "c"-edge targets of the top forest that carry
	// links (the eligible 50%).
	TopLeaves []graph.NodeID
	// BottomG are the link-carrying bottom leaves reached by "g" edges;
	// BottomH the sibling leaves reached by "h" edges (m=3 only).
	BottomG []graph.NodeID
	BottomH []graph.NodeID
	// Links records, per link, the top leaf and bottom leaf (m=2) or the
	// top leaf and the two sibling bottom leaves (m=3) it connects.
	Links [][]graph.NodeID
	M     int
	NT    int
	NL    int
	SL    int
}

// Name describes the instance.
func (c *CDF) Name() string {
	return fmt.Sprintf("CDF(m=%d,NT=%d,NL=%d,SL=%d)", c.M, c.NT, c.NL, c.SL)
}

// NewCDF generates a CDF graph with NT complete binary trees of depth 3 in
// each of the top and bottom forests and NL links of SL edges each.
//
// Top trees use edge labels a,b (root level) and c,d (leaf level); bottom
// trees use e,f and g,h, exactly as in Figure 9. Only top leaves that are
// targets of "c" edges can carry links, and links are concentrated on 50%
// of them. For m=2 a link is a chain of SL edges to an eligible "g" bottom
// leaf; for m=3 a link is a Y: a stem of SL-2 edges from the top leaf to a
// fork, plus one edge to each of a sibling ("g","h") pair of bottom leaves,
// so every link answers the benchmark BGP (v,"g",bl1),(v,"h",bl2).
//
// Links are distributed round-robin (exactly uniform) over the eligible
// leaves. m must be 2 or 3; SL >= 3 when m=3.
func NewCDF(m, nt, nl, sl int) *CDF {
	if m != 2 && m != 3 {
		panic("gen: CDF supports m in {2,3}")
	}
	if m == 3 && sl < 3 {
		panic("gen: CDF with m=3 needs SL >= 3")
	}
	if nt < 1 || nl < 0 || sl < 1 {
		panic("gen: CDF needs NT >= 1, NL >= 0, SL >= 1")
	}
	b := graph.NewBuilder()

	// buildTree adds a depth-3 complete binary tree (7 nodes, 6 edges) and
	// returns the targets of the four leaf edges, in label order
	// [c-leaf, d-leaf, c-leaf, d-leaf] for the top forest (g,h for bottom).
	buildTree := func(prefix string, i int, rootLvl [2]string, leafLvl [2]string) [4]graph.NodeID {
		root := b.AddNode(fmt.Sprintf("%s%d", prefix, i))
		c1 := b.AddNodes(1)
		c2 := b.AddNodes(1)
		b.AddEdge(root, rootLvl[0], c1)
		b.AddEdge(root, rootLvl[1], c2)
		var leaves [4]graph.NodeID
		for j, parent := range [2]graph.NodeID{c1, c2} {
			l1 := b.AddNodes(1)
			l2 := b.AddNodes(1)
			b.AddEdge(parent, leafLvl[0], l1)
			b.AddEdge(parent, leafLvl[1], l2)
			leaves[2*j] = l1
			leaves[2*j+1] = l2
		}
		return leaves
	}

	var cTop, gBottom, hBottom []graph.NodeID
	for i := 0; i < nt; i++ {
		lv := buildTree("T", i, [2]string{"a", "b"}, [2]string{"c", "d"})
		// c-targets are positions 0 and 2.
		cTop = append(cTop, lv[0], lv[2])
	}
	for i := 0; i < nt; i++ {
		lv := buildTree("B", i, [2]string{"e", "f"}, [2]string{"g", "h"})
		gBottom = append(gBottom, lv[0], lv[2])
		hBottom = append(hBottom, lv[1], lv[3])
	}

	// Eligibility: 50% of the c-top leaves; for m=2, 50% of the g-bottom
	// leaves; for m=3, 50% of all bottom leaves = one (g,h) sibling pair
	// per tree.
	eligTop := cTop[:len(cTop)/2]
	var eligG, eligH []graph.NodeID
	if m == 2 {
		eligG = gBottom[:len(gBottom)/2]
	} else {
		// One sibling pair per tree: take the first (g,h) pair of each.
		for i := 0; i < nt; i++ {
			eligG = append(eligG, gBottom[2*i])
			eligH = append(eligH, hBottom[2*i])
		}
	}

	cdf := &CDF{M: m, NT: nt, NL: nl, SL: sl,
		TopLeaves: eligTop, BottomG: eligG, BottomH: eligH}

	counter := 0
	freshNode := func() graph.NodeID {
		counter++
		return b.AddNode(fmt.Sprintf("L%d", counter))
	}
	for i := 0; i < nl; i++ {
		top := eligTop[i%len(eligTop)]
		bi := i % len(eligG)
		if m == 2 {
			// Chain of sl edges: top -> i1 -> ... -> i(sl-1) -> bottom.
			cur := top
			for k := 0; k < sl-1; k++ {
				next := freshNode()
				b.AddEdge(cur, "link", next)
				cur = next
			}
			b.AddEdge(cur, "link", eligG[bi])
			cdf.Links = append(cdf.Links, []graph.NodeID{top, eligG[bi]})
		} else {
			// Y: stem of sl-2 edges to the fork, then fork->g and fork->h.
			cur := top
			for k := 0; k < sl-2; k++ {
				next := freshNode()
				b.AddEdge(cur, "link", next)
				cur = next
			}
			b.AddEdge(cur, "link", eligG[bi])
			b.AddEdge(cur, "link", eligH[bi])
			cdf.Links = append(cdf.Links, []graph.NodeID{top, eligG[bi], eligH[bi]})
		}
	}
	cdf.Graph = b.Build()
	return cdf
}
