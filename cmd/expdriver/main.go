// Command expdriver regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index and the expected shapes).
//
// Usage:
//
//	expdriver -list
//	expdriver -exp fig11b
//	expdriver -all -scale 0.5 -timeout 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctpquery/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (fig2, fig10a..c, fig11a..f, fig12, fig13, fig14, table1)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
		scale   = flag.Float64("scale", 1, "workload scale factor")
		timeout = flag.Duration("timeout", 2*time.Second, "per-point timeout")
		seed    = flag.Int64("seed", 1, "synthetic data seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.Config{Scale: *scale, Timeout: *timeout, Seed: *seed}
	run := func(e bench.Experiment) {
		fmt.Printf("## %s — %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	switch {
	case *all:
		for _, e := range bench.All() {
			run(e)
		}
	case *expID != "":
		e, ok := bench.Get(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "expdriver: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
