// Command eqlrun executes an Extended Query Language query over a graph
// stored in the triple text format (src edgeLabel dst per line; see
// internal/graph.LoadTriples) and prints the result rows and connecting
// trees.
//
// Usage:
//
//	eqlrun -graph data.triples -query query.eql
//	eqlrun -sample -q 'SELECT ?x ?w WHERE { ?x citizenOf USA . CONNECT ?x France AS ?w MAX 4 . }'
//
// With -sample, the paper's Figure 1 example graph is used. The CTP
// evaluation algorithm defaults to MoLESP; -algo selects another variant
// (BFT, BFT-M, BFT-AM, GAM, ESP, MoESP, LESP, MoLESP).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (triples, or .snap binary snapshot)")
		sample    = flag.String("sample", "", "use a built-in graph instead of -graph (fig1)")
		queryPath = flag.String("query", "", "file holding the EQL query")
		queryText = flag.String("q", "", "inline EQL query text")
		algoName  = flag.String("algo", "MoLESP", "CTP algorithm")
		timeout   = flag.Duration("timeout", 0, "default CTP timeout (0 = none)")
		maxRows   = flag.Int("rows", 20, "result rows to print (0 = all)")
		showTrees = flag.Bool("trees", true, "print the connecting trees")
		explain   = flag.Bool("explain", false, "print the query plan instead of executing")
	)
	flag.Parse()
	if err := run(*graphPath, *sample, *queryPath, *queryText, *algoName, *timeout, *maxRows, *showTrees, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "eqlrun:", err)
		os.Exit(1)
	}
}

func run(graphPath, sample, queryPath, queryText, algoName string, timeout time.Duration, maxRows int, showTrees, explain bool) error {
	g, err := loadGraph(graphPath, sample)
	if err != nil {
		return err
	}
	text, err := loadQuery(queryPath, queryText)
	if err != nil {
		return err
	}
	q, err := eql.Parse(text)
	if err != nil {
		return err
	}
	alg, err := parseAlgo(algoName)
	if err != nil {
		return err
	}

	eng := engine.New(g, engine.Options{Algorithm: alg, DefaultTimeout: timeout})
	if explain {
		plan, err := eng.Explain(q)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	start := time.Now()
	res, err := eng.Execute(q)
	if err != nil {
		return err
	}
	total := time.Since(start)

	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("rows: %d  (BGP %v, CTP %v, join %v, total %v)\n",
		res.Table.NumRows(), res.BGPTime.Round(time.Microsecond),
		res.CTPTime.Round(time.Microsecond), res.JoinTime.Round(time.Microsecond),
		total.Round(time.Microsecond))
	for i, st := range res.CTPStats {
		fmt.Printf("CTP %d: %d results, %d provenances, timed out: %v\n",
			i, st.Results, st.Kept(), st.TimedOut)
	}

	treeVars := map[string]bool{}
	for _, tv := range q.TreeVars() {
		treeVars[tv] = true
	}
	n := res.Table.NumRows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		fmt.Printf("-- row %d: %s\n", i, res.FormatRow(g, q, i))
		if !showTrees {
			continue
		}
		for ci, c := range res.Table.Cols() {
			if !treeVars[c] {
				continue
			}
			t := res.Tree(res.Table.Row(i)[ci])
			fmt.Println(indent(engine.FormatTree(g, t), "   "))
		}
	}
	if res.Table.NumRows() > n {
		fmt.Printf("... %d more rows\n", res.Table.NumRows()-n)
	}
	return nil
}

func loadGraph(path, sample string) (*graph.Graph, error) {
	switch {
	case sample == "fig1" || (sample != "" && path == ""):
		return gen.Sample(), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(path, ".snap") {
			return graph.ReadSnapshot(f)
		}
		return graph.LoadTriples(f)
	}
	return nil, fmt.Errorf("need -graph FILE or -sample fig1")
}

func loadQuery(path, inline string) (string, error) {
	switch {
	case inline != "":
		return inline, nil
	case path == "-":
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	case path != "":
		b, err := os.ReadFile(path)
		return string(b), err
	}
	return "", fmt.Errorf("need -query FILE or -q 'QUERY'")
}

func parseAlgo(name string) (core.Algorithm, error) {
	for _, a := range core.Algorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func indent(s, pad string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
