// Command ctpload is the traffic-realism harness for ctpserve: it
// replays open-loop workload mixes — cache-heavy Zipf traffic,
// heavy-tail analytical enumerations, burst floods — and reports SLO
// metrics (p50/p95/p99 per class, throughput, shed counts, cache-hit
// ratio).
//
// Two modes:
//
//	ctpload -url http://localhost:8080 -mix burst -duration 10s -rps 30
//	    replay one mix against a live server and print the report.
//	    -mutate-rps N additionally streams mutation batches to
//	    POST /ingest while the queries run (the server must be -live);
//	    the report then includes ingest p50/p99 and the final epoch.
//
//	ctpload -suite -out BENCH_pr6.json -baseline BENCH_pr5.json
//	    run the full self-contained suite (in-process servers, the
//	    three canonical mixes, and the admission-on/off saturation
//	    comparison) and write the benchmark trajectory file.
//
//	ctpload -live-smoke -scale 0.3
//	    mixed read/write smoke: cache-heavy queries and an open-loop
//	    ingest stream against one in-process live server, asserting no
//	    query errors, no ingest failures, and that background
//	    compaction ran under the load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"time"

	"ctpquery/internal/load"
)

func main() {
	var (
		// live-replay mode
		urlFlag     = flag.String("url", "", "base URL of a running ctpserve (live-replay mode)")
		mixFlag     = flag.String("mix", "cache-heavy", "workload: cache-heavy, analytical-heavy, or burst")
		duration    = flag.Duration("duration", 10*time.Second, "total replay duration (per-phase for burst)")
		rps         = flag.Float64("rps", 25, "open-loop arrival rate (baseline rate for burst)")
		nodes       = flag.Int("nodes", 4000, "node-id range for generated queries / suite graph size")
		seed        = flag.Int64("seed", 1, "workload seed (same seed = same query sequence)")
		jsonOut     = flag.Bool("json", false, "print the live-replay report as JSON")
		retries     = flag.Int("retries", 0, "per-request retry cap for 429 sheds, honoring Retry-After under capped exponential backoff with jitter (0 = sheds are terminal)")
		retryBudget = flag.Int64("retry-budget", 0, "total retries allowed per scheduling class across the replay (0 = unlimited while -retries > 0)")
		retryBase   = flag.Duration("retry-base", 100*time.Millisecond, "base backoff before the first retry; doubles per attempt")
		retryMax    = flag.Duration("retry-max", 5*time.Second, "cap on any single backoff wait")
		mutateRPS   = flag.Float64("mutate-rps", 0, "additionally POST mutation batches to /ingest at this rate, concurrently with the query replay (live-replay mode; the server must run -live)")

		// suite mode
		suite    = flag.Bool("suite", false, "run the self-contained benchmark suite instead of a live replay")
		edges    = flag.Int("edges", 0, "suite graph edges (0 = 4x nodes)")
		scale    = flag.Float64("scale", 1.0, "suite duration multiplier (0.1 = CI smoke)")
		out      = flag.String("out", "BENCH_pr6.json", "suite report path")
		baseline = flag.String("baseline", "", "previous BENCH json to embed as baseline")

		// cluster-smoke mode
		clusterSmoke = flag.Bool("cluster-smoke", false, "replay the cache-heavy mix through an in-process 2-replica cluster with one shard fault-armed, and print the report as JSON")

		// scrape-smoke mode
		scrapeSmoke = flag.Bool("scrape-smoke", false, "replay through an in-process 2-partition traced cluster, then assert /metrics parses and the shard traces join the coordinator's, and print the report as JSON")

		// live-smoke mode
		liveSmoke = flag.Bool("live-smoke", false, "replay queries and an ingest stream concurrently against an in-process live server (background compaction under load), and print the report as JSON")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *clusterSmoke {
		if err := runClusterSmoke(ctx, *nodes, *edges, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ctpload:", err)
			os.Exit(1)
		}
		return
	}
	if *scrapeSmoke {
		if err := runScrapeSmoke(ctx, *nodes, *edges, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ctpload:", err)
			os.Exit(1)
		}
		return
	}
	if *liveSmoke {
		if err := runLiveSmoke(ctx, *nodes, *edges, *seed, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "ctpload:", err)
			os.Exit(1)
		}
		return
	}
	if *suite {
		if err := runSuite(ctx, *nodes, *edges, *seed, *scale, *out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "ctpload:", err)
			os.Exit(1)
		}
		return
	}
	if *urlFlag == "" {
		fmt.Fprintln(os.Stderr, "ctpload: either -url (live replay) or -suite is required")
		flag.Usage()
		os.Exit(2)
	}
	pol := load.RetryPolicy{
		MaxRetries:  *retries,
		Budget:      *retryBudget,
		BaseBackoff: *retryBase,
		MaxBackoff:  *retryMax,
	}
	if err := runLive(ctx, *urlFlag, *mixFlag, *duration, *rps, *mutateRPS, *nodes, *seed, *jsonOut, pol); err != nil {
		fmt.Fprintln(os.Stderr, "ctpload:", err)
		os.Exit(1)
	}
}

func buildPlan(mix string, d time.Duration, rps float64, nodes int, seed int64) (load.Plan, error) {
	switch mix {
	case "cache-heavy":
		return load.SteadyPlan(load.CacheHeavyMix(nodes, 32, seed), rps, d), nil
	case "analytical-heavy":
		return load.SteadyPlan(load.AnalyticalHeavyMix(nodes), rps, d), nil
	case "burst":
		return load.BurstPlan(nodes, seed, rps, rps*2.4, d), nil
	default:
		return load.Plan{}, fmt.Errorf("unknown mix %q (want cache-heavy, analytical-heavy, or burst)", mix)
	}
}

func runLive(ctx context.Context, url, mix string, d time.Duration, rps, mutateRPS float64, nodes int, seed int64, asJSON bool, pol load.RetryPolicy) error {
	plan, err := buildPlan(mix, d, rps, nodes, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replaying %s against %s (%.0f rps, seed %d)\n", plan.Name, url, rps, seed)
	var total time.Duration
	for _, ph := range plan.Phases {
		total += ph.Duration
	}
	var (
		wg        sync.WaitGroup
		ingestRes *load.IngestResult
		ingestErr error
	)
	if mutateRPS > 0 {
		fmt.Fprintf(os.Stderr, "mutating via /ingest at %.0f rps concurrently\n", mutateRPS)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ingestRes, ingestErr = load.IngestReplay(ctx, url, mutateRPS, total, nodes, seed+1)
		}()
	}
	res, err := load.ReplayWithPolicy(ctx, url, plan, seed, pol)
	wg.Wait()
	if err != nil {
		return err
	}
	if ingestErr != nil {
		return ingestErr
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if ingestRes != nil {
			return enc.Encode(map[string]any{"replay": res, "ingest": ingestRes})
		}
		return enc.Encode(res)
	}
	printResult(res)
	if ingestRes != nil {
		fmt.Printf("ingest: %d batches (%d ok, %d failed), %.1f rps, p50 %.1fms p99 %.1fms, epoch %d\n",
			ingestRes.Batches, ingestRes.OK, ingestRes.Failures, ingestRes.ThroughputRPS,
			ingestRes.Latency.P50MS, ingestRes.Latency.P99MS, ingestRes.FinalEpoch)
	}
	return nil
}

func runLiveSmoke(ctx context.Context, nodes, edges int, seed int64, scale float64) error {
	rep, err := load.RunLiveSmoke(ctx, load.LiveSmokeConfig{
		Nodes: nodes, Edges: edges, Seed: seed, Scale: scale, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printResult(r *load.Result) {
	fmt.Printf("plan %s: %d requests in %.1fs (%.1f ok-rps)\n", r.Plan, r.Requests, r.DurationS, r.ThroughputRPS)
	fmt.Printf("  ok %d  shed %d  errors %d  timeouts %d  cache-hits %d (%.0f%%)  bypasses %d\n",
		r.OK, r.Shed, r.Errors, r.Timeouts, r.CacheHits, 100*r.CacheHitRatio, r.CacheBypasses)
	if r.Retries > 0 || r.RetryBudgetDry > 0 {
		fmt.Printf("  retries %d  retried-ok %d  retry-budget-dry %d\n",
			r.Retries, r.RetriedOK, r.RetryBudgetDry)
	}
	row := func(name string, c load.ClassSummary) {
		if c.Count == 0 {
			return
		}
		fmt.Printf("  %-10s n=%-5d p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  max %7.1fms\n",
			name, c.Count, c.P50MS, c.P95MS, c.P99MS, c.MaxMS)
	}
	row("overall", r.Overall)
	row("cheap", r.Cheap)
	row("analytical", r.Analytical)
	row("shed", r.ShedLatency)
}

func runClusterSmoke(ctx context.Context, nodes, edges int, seed int64, scale float64) error {
	rep, err := load.RunClusterSmoke(ctx, load.ClusterSmokeConfig{
		Nodes: nodes, Edges: edges, Seed: seed, Scale: scale, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	// The smoke's pass condition: injected shard faults were absorbed by
	// failover/retry instead of surfacing to clients.
	if rep.FaultsFired == 0 {
		return fmt.Errorf("cluster.send fault never fired — the smoke exercised nothing")
	}
	if rep.Replay.Errors > 0 {
		return fmt.Errorf("%d client-visible errors despite failover (%d faults injected)",
			rep.Replay.Errors, rep.FaultsFired)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runScrapeSmoke(ctx context.Context, nodes, edges int, seed int64, scale float64) error {
	rep, err := load.RunScrapeSmoke(ctx, load.ScrapeSmokeConfig{
		Nodes: nodes, Edges: edges, Seed: seed, Scale: scale, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runSuite(ctx context.Context, nodes, edges int, seed int64, scale float64, out, baseline string) error {
	rep, err := load.RunSuite(ctx, load.SuiteConfig{
		Nodes: nodes, Edges: edges, Seed: seed, Scale: scale, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	if baseline != "" {
		if err := rep.EmbedBaseline(baseline); err != nil {
			return err
		}
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	c := rep.Comparison
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	fmt.Fprintf(os.Stderr, "saturation cheap p99: admission on %.1fms, off %.1fms (%.1fx), %d shed\n",
		c.CheapP99OnMS, c.CheapP99OffMS, c.CheapP99Ratio, c.ShedsAdmission)
	return nil
}
