package main

import (
	"testing"

	"ctpquery"
)

// -save-snapshot writes a file the -graph sniffer loads back.
func TestSaveSnapshotRoundTrip(t *testing.T) {
	g := ctpquery.RandomGraph(50, 120, []string{"t"}, 3)
	path := t.TempDir() + "/g.ctpg"
	if err := writeSnapshot(g, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ctpquery.OpenGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot round-trip: got %d/%d nodes-edges, want %d/%d",
			loaded.NumNodes(), loaded.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}
