// Command ctpserve loads a graph once and serves Extended Query Language
// queries over HTTP, concurrently: the immutable graph needs no locking,
// so requests run in parallel up to whatever the hardware sustains.
//
// Usage:
//
//	ctpserve -graph data.triples                 # triples, .snap, or .ctpg
//	ctpserve -sample fig1                        # the paper's Figure 1 graph
//	ctpserve -random 5000x20000 -seed 7          # generated random graph
//
// Graph files are sniffed by content: binary snapshots (the "CTPG" magic,
// any extension) load in milliseconds, anything else parses as triples.
// -save-snapshot FILE writes the loaded graph back out as a snapshot so
// the next start skips the text parse.
//
// Endpoints:
//
//	POST /query    {"query": "SELECT ?w WHERE { CONNECT Alice Bob AS ?w MAX 4 . }",
//	                "timeout_ms": 500, "algorithm": "MoLESP", "max_rows": 100,
//	                "parallelism": 4}
//	               -> rows (node bindings + connecting trees), timings, flags,
//	                  and a per-query search report (trees generated/kept,
//	                  peak queue length, peak live trees, allocations, and —
//	                  for parallel queries — per-worker effort)
//	POST /ingest   (-live only) mutation batches in the mutation-stream
//	               text format: "+n label [type...]", "+t node type",
//	               "+e src label dst", "-e src label dst"; a blank line
//	               separates batches, each batch applies atomically and
//	               advances the graph epoch
//	GET  /healthz  liveness + graph size (+ epoch when -live)
//	GET  /stats    request metrics (counts, timeouts, in-flight, avg latency)
//	               plus aggregated search-effort and per-worker counters
//	GET  /metrics  the same counters in Prometheus text exposition format
//	GET  /debug/traces    recent query traces from the flight recorder
//	                      (?id=<trace_id> for one trace's span tree);
//	                      -slow-query-ms additionally logs and pins slow ones
//	GET  /debug/pprof/  net/http/pprof profiling, with -pprof
//
// Each request gets its own evaluation context: its timeout (capped by
// -max-timeout) bounds the CTP searches and an expiring budget returns
// the partial results found so far with "timed_out": true, per the
// paper's TIMEOUT semantics. -algo sets the default CTP algorithm and
// -parallelism the default per-search worker count (0 = the sequential
// kernel, -1 = GOMAXPROCS); requests may override both per query.
// -cache-bytes enables a query-result cache (keyed on the immutable
// graph's fingerprint + canonical query text + effective options):
// repeated queries are answered without searching, concurrent identical
// queries collapse into one search, and partial (timed-out/truncated)
// results are never cached; per-response "cache" JSON and the /stats
// "cache" section report hits, misses, and coalesced requests. The
// server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctpquery"
	"ctpquery/internal/admission"
	"ctpquery/internal/fault"
	"ctpquery/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", ":8372", "listen address")
		graphPath      = flag.String("graph", "", "graph file (triples text or a binary snapshot — sniffed by content, any extension)")
		sample         = flag.String("sample", "", "use a built-in graph instead of -graph (fig1)")
		random         = flag.String("random", "", "generate a random connected graph, NODESxEDGES (e.g. 5000x20000)")
		seed           = flag.Int64("seed", 1, "random graph seed")
		algoName       = flag.String("algo", "MoLESP", "default CTP algorithm")
		parallel       = flag.Bool("parallel", true, "evaluate a query's CTPs concurrently")
		parallelism    = flag.Int("parallelism", 0, "default workers per CONNECT search (0 = sequential kernel, -1 = GOMAXPROCS); requests may override via \"parallelism\"")
		maxParallelism = flag.Int("max-parallelism", 16, "cap on per-request worker counts (each worker pins an OS thread; 0 = requests may not override)")
		saveSnapshot   = flag.String("save-snapshot", "", "after loading, write the graph as a binary snapshot to FILE and continue serving")
		defaultTimeout = flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request sets no timeout_ms (0 = none)")
		maxTimeout     = flag.Duration("max-timeout", time.Minute, "cap on requested timeouts (0 = uncapped)")
		maxRows        = flag.Int("max-rows", 1000, "cap on rows serialized per response (0 = unlimited)")
		pprofEnabled   = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		trackAllocs    = flag.Bool("track-allocs", true, "sample per-query heap allocation counts into the search report (two runtime.ReadMemStats calls per CONNECT search; disable for maximum throughput)")
		live           = flag.Bool("live", false, "serve a live (mutable) graph: POST /ingest applies mutation batches, queries pin the epoch current at their entry, and the delta compacts into a fresh base in the background")
		compactOps     = flag.Int("compact-threshold", 0, "delta ops that trigger a background compaction (0 = default, negative = never compact); only with -live")
		cacheBytes     = flag.Int64("cache-bytes", 0, "query-result cache budget in bytes (0 = no cache); completed results are served from cache and concurrent identical queries collapse into one search")
		cacheTTL       = flag.Duration("cache-ttl", 0, "expire cache entries this old (0 = never; the graph is immutable, so entries cannot go stale)")
		admissionOn    = flag.Bool("admission", true, "enable admission control: requests are cost-classified (cheap vs analytical), queued in bounded two-class queues, and shed with 429 + Retry-After under saturation")
		admitSlots     = flag.Int("admit-concurrent", 0, "execution slots for admitted requests (0 = GOMAXPROCS)")
		admitReserve   = flag.Int("admit-cheap-reserve", 1, "slots only cheap-class requests may occupy (clamped below admit-concurrent)")
		admitQueue     = flag.Int("admit-queue-depth", 64, "per-class wait-queue bound; beyond it requests shed immediately")
		admitWait      = flag.Duration("admit-queue-wait", 2*time.Second, "longest a request may wait for a slot before it is shed")
		admitBudget    = flag.Float64("admit-cost-budget", 0, "cap on summed in-flight estimated cost units; analytical requests beyond it shed (0 = no budget)")
		admitThreshold = flag.Duration("admit-cheap-threshold", 50*time.Millisecond, "estimated search time above which a request classifies analytical")
		memSoftMB      = flag.Int64("mem-soft-mb", 0, "live-heap soft watermark in MiB: above it the server degrades (sheds half the cache, halves parallelism, tightens the admission budget) and /healthz reports \"degraded\" (0 = watchdog off)")
		memHardMB      = flag.Int64("mem-hard-mb", 0, "live-heap hard watermark in MiB: cache emptied, parallelism capped at 1, admission budget quartered (0 = 2x the soft watermark)")
		wdInterval     = flag.Duration("watchdog-interval", 5*time.Second, "how often the memory watchdog samples the heap")
		faultSpec      = flag.String("fault", "", "DEV ONLY: arm fault-injection points, comma-separated point:kind[=duration][@hit[xcount]] specs (e.g. exec.worker.process_op:panic@100)")
		drainGrace     = flag.Duration("drain-grace", 0, "on SIGTERM, keep serving (with /healthz answering 503 draining) this long before closing the listener, so load-balancer health checks observe the drain (0 = shut down immediately)")
		traceOn        = flag.Bool("trace", true, "record per-query traces into the flight recorder at /debug/traces; off reduces every span to one atomic load")
		traceRing      = flag.Int("trace-ring", 256, "completed traces kept in the flight-recorder ring")
		slowQueryMS    = flag.Int64("slow-query-ms", 0, "log queries slower than this many ms and pin their traces in the slow ring (0 = slow log off)")
	)
	flag.Parse()
	cfg := serverConfig{
		addr:           *addr,
		graphPath:      *graphPath,
		sample:         *sample,
		random:         *random,
		seed:           *seed,
		algo:           *algoName,
		parallel:       *parallel,
		parallelism:    *parallelism,
		maxParallelism: *maxParallelism,
		saveSnapshot:   *saveSnapshot,
		defaultTimeout: *defaultTimeout,
		maxTimeout:     *maxTimeout,
		maxRows:        *maxRows,
		pprof:          *pprofEnabled,
		trackAllocs:    *trackAllocs,
		live:           *live,
		compactOps:     *compactOps,
		cacheBytes:     *cacheBytes,
		cacheTTL:       *cacheTTL,
		admission:      *admissionOn,
		admitSlots:     *admitSlots,
		admitReserve:   *admitReserve,
		admitQueue:     *admitQueue,
		admitWait:      *admitWait,
		admitBudget:    *admitBudget,
		admitThreshold: *admitThreshold,
		memSoftMB:      *memSoftMB,
		memHardMB:      *memHardMB,
		wdInterval:     *wdInterval,
		faultSpec:      *faultSpec,
		drainGrace:     *drainGrace,
		trace:          *traceOn,
		traceRing:      *traceRing,
		slowQueryMS:    *slowQueryMS,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ctpserve:", err)
		os.Exit(1)
	}
}

// serverConfig carries the parsed flags into run by name, so adding a
// flag cannot silently transpose two same-typed positional parameters.
type serverConfig struct {
	addr           string
	graphPath      string
	sample         string
	random         string
	seed           int64
	algo           string
	parallel       bool
	parallelism    int
	maxParallelism int
	saveSnapshot   string
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxRows        int
	pprof          bool
	trackAllocs    bool
	live           bool
	compactOps     int
	cacheBytes     int64
	cacheTTL       time.Duration
	admission      bool
	admitSlots     int
	admitReserve   int
	admitQueue     int
	admitWait      time.Duration
	admitBudget    float64
	admitThreshold time.Duration
	memSoftMB      int64
	memHardMB      int64
	wdInterval     time.Duration
	faultSpec      string
	drainGrace     time.Duration
	trace          bool
	traceRing      int
	slowQueryMS    int64
}

func run(cfg serverConfig) error {
	if cfg.faultSpec != "" {
		if err := fault.ParseSpec(cfg.faultSpec); err != nil {
			return fmt.Errorf("-fault: %w", err)
		}
		log.Printf("FAULT INJECTION armed (dev only): %s", cfg.faultSpec)
	}
	g, desc, err := loadGraph(cfg.graphPath, cfg.sample, cfg.random, cfg.seed)
	if err != nil {
		return err
	}
	// The startup default resolves and clamps through the same helper as
	// per-request overrides, so the two paths cannot drift apart.
	cfg.parallelism = serve.ClampParallelism(cfg.parallelism, cfg.maxParallelism)
	if cfg.saveSnapshot != "" {
		if err := writeSnapshot(g, cfg.saveSnapshot); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
		log.Printf("snapshot written to %s", cfg.saveSnapshot)
	}
	if cfg.live {
		g = g.LiveWithConfig(ctpquery.LiveConfig{CompactThreshold: cfg.compactOps})
	}
	opts := &ctpquery.Options{
		Algorithm: cfg.algo, Parallel: cfg.parallel, Parallelism: cfg.parallelism,
		TrackAllocs: cfg.trackAllocs}
	if cfg.cacheBytes > 0 {
		opts.Cache = &ctpquery.CacheConfig{MaxBytes: cfg.cacheBytes, TTL: cfg.cacheTTL}
	}
	db, err := ctpquery.Open(g, opts)
	if err != nil {
		return err
	}
	scfg := serve.Config{
		DefaultTimeout:   cfg.defaultTimeout,
		MaxTimeout:       cfg.maxTimeout,
		MaxRows:          cfg.maxRows,
		MaxParallelism:   cfg.maxParallelism,
		MemSoftBytes:     cfg.memSoftMB << 20,
		MemHardBytes:     cfg.memHardMB << 20,
		WatchdogInterval: cfg.wdInterval,
		DrainGrace:       cfg.drainGrace,
		TraceOff:         !cfg.trace,
		TraceRing:        cfg.traceRing,
		SlowQuery:        time.Duration(cfg.slowQueryMS) * time.Millisecond,
	}
	if cfg.admission {
		scfg.Admission = &admission.Config{
			MaxConcurrent: cfg.admitSlots,
			CheapReserve:  cfg.admitReserve,
			QueueDepth:    cfg.admitQueue,
			MaxQueueWait:  cfg.admitWait,
			CostBudget:    cfg.admitBudget,
		}
		if cfg.admitSlots <= 0 {
			scfg.Admission.MaxConcurrent = serve.ClampParallelism(-1, 0)
		}
		scfg.Estimator = admission.EstimatorConfig{
			CheapThreshold: float64(cfg.admitThreshold.Milliseconds()) * admission.UnitsPerMS,
		}
	}
	s, err := serve.New(db, scfg)
	if err != nil {
		return err
	}

	log.Printf("graph %s: %d nodes, %d edges; algorithm %s",
		desc, g.NumNodes(), g.NumEdges(), db.Options().Algorithm)
	if cfg.live {
		if st, ok := g.StoreStats(); ok {
			log.Printf("live graph: POST /ingest enabled, compaction threshold %d ops", st.CompactThreshold)
		}
	}
	if cfg.cacheBytes > 0 {
		log.Printf("result cache: %d byte budget, ttl %v, graph fingerprint %#x",
			cfg.cacheBytes, cfg.cacheTTL, g.Fingerprint())
	}
	if cfg.admission {
		log.Printf("admission control: %d slots (%d cheap-reserved), queue depth %d, max wait %v",
			scfg.Admission.MaxConcurrent, cfg.admitReserve, cfg.admitQueue, cfg.admitWait)
	}
	if cfg.memSoftMB > 0 {
		log.Printf("memory watchdog: degrade above %d MiB, hard-degrade above %d MiB (0 = 2x soft), sampling every %v",
			cfg.memSoftMB, cfg.memHardMB, cfg.wdInterval)
	}
	if cfg.pprof {
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: cfg.addr, Handler: s.Handler(cfg.pprof)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s.StartWatchdog(ctx)
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip /healthz to draining (503) first, so load balancers stop
	// routing new work while the graceful shutdown drains in-flight ones.
	// Shutdown refuses new connections and closes idle ones immediately,
	// so without a grace window a health checker on a fresh connection
	// never observes the 503 — hold the listener open for drainGrace.
	s.SetDraining()
	log.Printf("shutting down, draining in-flight queries")
	if cfg.drainGrace > 0 {
		log.Printf("drain grace: serving /healthz draining for %v before closing the listener", cfg.drainGrace)
		select {
		case <-time.After(cfg.drainGrace):
		case err := <-errc:
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func loadGraph(path, sample, random string, seed int64) (*ctpquery.Graph, string, error) {
	switch {
	case random != "":
		var n, e int
		if _, err := fmt.Sscanf(strings.ToLower(random), "%dx%d", &n, &e); err != nil || n < 1 {
			return nil, "", fmt.Errorf("bad -random %q, want NODESxEDGES (e.g. 5000x20000)", random)
		}
		return ctpquery.RandomGraph(n, e, []string{"knows", "cites", "funds", "worksFor"}, seed),
			fmt.Sprintf("random(%dx%d, seed %d)", n, e, seed), nil
	case sample != "":
		if sample != "fig1" {
			return nil, "", fmt.Errorf("unknown -sample %q (have: fig1)", sample)
		}
		return ctpquery.SampleGraph(), "sample fig1", nil
	case path != "":
		g, err := ctpquery.OpenGraph(path)
		if err != nil {
			return nil, "", err
		}
		return g, path, nil
	}
	return nil, "", fmt.Errorf("need -graph FILE, -sample fig1, or -random NODESxEDGES")
}

// writeSnapshot persists the loaded graph in the binary snapshot format
// the -graph sniffer recognizes, so subsequent starts skip text parsing.
func writeSnapshot(g *ctpquery.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
