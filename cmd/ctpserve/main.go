// Command ctpserve loads a graph once and serves Extended Query Language
// queries over HTTP, concurrently: the immutable graph needs no locking,
// so requests run in parallel up to whatever the hardware sustains.
//
// Usage:
//
//	ctpserve -graph data.triples                 # or a .snap snapshot
//	ctpserve -sample fig1                        # the paper's Figure 1 graph
//	ctpserve -random 5000x20000 -seed 7          # generated random graph
//
// Endpoints:
//
//	POST /query    {"query": "SELECT ?w WHERE { CONNECT Alice Bob AS ?w MAX 4 . }",
//	                "timeout_ms": 500, "algorithm": "MoLESP", "max_rows": 100}
//	               -> rows (node bindings + connecting trees), timings, flags,
//	                  and a per-query search report (trees generated/kept,
//	                  peak queue length, peak live trees, allocations)
//	GET  /healthz  liveness + graph size
//	GET  /stats    request metrics (counts, timeouts, in-flight, avg latency)
//	               plus aggregated search-effort counters
//	GET  /debug/pprof/  net/http/pprof profiling, with -pprof
//
// Each request gets its own evaluation context: its timeout (capped by
// -max-timeout) bounds the CTP searches and an expiring budget returns
// the partial results found so far with "timed_out": true, per the
// paper's TIMEOUT semantics. -algo sets the default CTP algorithm;
// requests may override it per query. The server shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctpquery"
)

func main() {
	var (
		addr           = flag.String("addr", ":8372", "listen address")
		graphPath      = flag.String("graph", "", "graph file (triples, or .snap binary snapshot)")
		sample         = flag.String("sample", "", "use a built-in graph instead of -graph (fig1)")
		random         = flag.String("random", "", "generate a random connected graph, NODESxEDGES (e.g. 5000x20000)")
		seed           = flag.Int64("seed", 1, "random graph seed")
		algoName       = flag.String("algo", "MoLESP", "default CTP algorithm")
		parallel       = flag.Bool("parallel", true, "evaluate a query's CTPs concurrently")
		defaultTimeout = flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request sets no timeout_ms (0 = none)")
		maxTimeout     = flag.Duration("max-timeout", time.Minute, "cap on requested timeouts (0 = uncapped)")
		maxRows        = flag.Int("max-rows", 1000, "cap on rows serialized per response (0 = unlimited)")
		pprofEnabled   = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
		trackAllocs    = flag.Bool("track-allocs", true, "sample per-query heap allocation counts into the search report (two runtime.ReadMemStats calls per CONNECT search; disable for maximum throughput)")
	)
	flag.Parse()
	if err := run(*addr, *graphPath, *sample, *random, *seed, *algoName, *parallel,
		*defaultTimeout, *maxTimeout, *maxRows, *pprofEnabled, *trackAllocs); err != nil {
		fmt.Fprintln(os.Stderr, "ctpserve:", err)
		os.Exit(1)
	}
}

func run(addr, graphPath, sample, random string, seed int64, algoName string, parallel bool,
	defaultTimeout, maxTimeout time.Duration, maxRows int, pprofEnabled, trackAllocs bool) error {
	g, desc, err := loadGraph(graphPath, sample, random, seed)
	if err != nil {
		return err
	}
	db, err := ctpquery.Open(g, &ctpquery.Options{
		Algorithm: algoName, Parallel: parallel, TrackAllocs: trackAllocs})
	if err != nil {
		return err
	}
	s, err := newServer(db, defaultTimeout, maxTimeout, maxRows)
	if err != nil {
		return err
	}

	log.Printf("graph %s: %d nodes, %d edges; algorithm %s",
		desc, g.NumNodes(), g.NumEdges(), db.Options().Algorithm)
	if pprofEnabled {
		log.Printf("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: addr, Handler: s.handler(pprofEnabled)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight queries")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func loadGraph(path, sample, random string, seed int64) (*ctpquery.Graph, string, error) {
	switch {
	case random != "":
		var n, e int
		if _, err := fmt.Sscanf(strings.ToLower(random), "%dx%d", &n, &e); err != nil || n < 1 {
			return nil, "", fmt.Errorf("bad -random %q, want NODESxEDGES (e.g. 5000x20000)", random)
		}
		return ctpquery.RandomGraph(n, e, []string{"knows", "cites", "funds", "worksFor"}, seed),
			fmt.Sprintf("random(%dx%d, seed %d)", n, e, seed), nil
	case sample != "":
		if sample != "fig1" {
			return nil, "", fmt.Errorf("unknown -sample %q (have: fig1)", sample)
		}
		return ctpquery.SampleGraph(), "sample fig1", nil
	case path != "":
		g, err := ctpquery.OpenGraph(path)
		if err != nil {
			return nil, "", err
		}
		return g, path, nil
	}
	return nil, "", fmt.Errorf("need -graph FILE, -sample fig1, or -random NODESxEDGES")
}
