// Command graphgen writes synthetic benchmark graphs (the paper's Line,
// Comb, Star, Chain, CDF topologies and the YAGO/DBPedia-like knowledge
// graphs) to the triple text format or the binary snapshot format, for use
// with eqlrun and external tools.
//
// Usage:
//
//	graphgen -topology star -m 5 -sl 3 -o star.triples
//	graphgen -topology cdf -m 2 -nt 64 -nl 128 -sl 3 -o cdf.snap
//	graphgen -topology yago -scale 1000 -o kg.snap
//	graphgen -topology yago -scale 1000 -o kg.snap -mutations 200
//
// -mutations N additionally emits N replayable mutation batches (the
// mutation-stream text format ctpserve's POST /ingest accepts) to
// -mutations-out (default OUT.mut), each batch validated against a
// live store of the generated graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func main() {
	var (
		topology = flag.String("topology", "", "line | comb | star | chain | cdf | yago | dbpedia")
		m        = flag.Int("m", 3, "seed sets (line, star, cdf)")
		sl       = flag.Int("sl", 3, "segment length")
		na       = flag.Int("na", 2, "comb: bristles")
		ns       = flag.Int("ns", 2, "comb: segments per bristle")
		dba      = flag.Int("dba", 2, "comb: spacing")
		n        = flag.Int("n", 10, "chain: length")
		nt       = flag.Int("nt", 16, "cdf: trees per forest")
		nl       = flag.Int("nl", 32, "cdf: links")
		scale    = flag.Int("scale", 1000, "kg: entity scale")
		seed     = flag.Int64("seed", 1, "kg: generation seed")
		out      = flag.String("o", "", "output file (.snap for binary, else triples)")
		mutN     = flag.Int("mutations", 0, "also emit N replayable mutation batches (edge adds/deletes, new nodes, type attachments) for the generated graph")
		mutOut   = flag.String("mutations-out", "", "mutation stream output file (default: OUT.mut)")
	)
	flag.Parse()
	if *topology == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	switch *topology {
	case "line":
		g = gen.Line(*m, *sl-1, gen.Alternate).Graph
	case "comb":
		g = gen.Comb(*na, *ns, *sl, *dba, gen.Alternate).Graph
	case "star":
		g = gen.Star(*m, *sl, gen.Alternate).Graph
	case "chain":
		g = gen.Chain(*n).Graph
	case "cdf":
		g = gen.NewCDF(*m, *nt, *nl, *sl).Graph
	case "yago":
		g = gen.YAGOLike(*scale, *seed).Graph
	case "dbpedia":
		g = gen.DBPediaLike(*scale, *seed).Graph
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".snap") {
		err = graph.WriteSnapshot(f, g)
	} else {
		err = graph.WriteTriples(f, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())

	if *mutN > 0 {
		path := *mutOut
		if path == "" {
			path = *out + ".mut"
		}
		batches, err := genMutations(g, *mutN, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		mf, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		if err := graph.WriteMutations(mf, batches); err != nil {
			mf.Close()
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		if err := mf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		ops := 0
		for _, b := range batches {
			ops += len(b.AddNodes) + len(b.AddTypes) + len(b.AddEdges) + len(b.DelEdges)
		}
		fmt.Printf("wrote %s: %d mutation batches (%d ops)\n", path, len(batches), ops)
	}
}
