// Command graphgen writes synthetic benchmark graphs (the paper's Line,
// Comb, Star, Chain, CDF topologies and the YAGO/DBPedia-like knowledge
// graphs) to the triple text format or the binary snapshot format, for use
// with eqlrun and external tools.
//
// Usage:
//
//	graphgen -topology star -m 5 -sl 3 -o star.triples
//	graphgen -topology cdf -m 2 -nt 64 -nl 128 -sl 3 -o cdf.snap
//	graphgen -topology yago -scale 1000 -o kg.snap
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

func main() {
	var (
		topology = flag.String("topology", "", "line | comb | star | chain | cdf | yago | dbpedia")
		m        = flag.Int("m", 3, "seed sets (line, star, cdf)")
		sl       = flag.Int("sl", 3, "segment length")
		na       = flag.Int("na", 2, "comb: bristles")
		ns       = flag.Int("ns", 2, "comb: segments per bristle")
		dba      = flag.Int("dba", 2, "comb: spacing")
		n        = flag.Int("n", 10, "chain: length")
		nt       = flag.Int("nt", 16, "cdf: trees per forest")
		nl       = flag.Int("nl", 32, "cdf: links")
		scale    = flag.Int("scale", 1000, "kg: entity scale")
		seed     = flag.Int64("seed", 1, "kg: generation seed")
		out      = flag.String("o", "", "output file (.snap for binary, else triples)")
	)
	flag.Parse()
	if *topology == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	switch *topology {
	case "line":
		g = gen.Line(*m, *sl-1, gen.Alternate).Graph
	case "comb":
		g = gen.Comb(*na, *ns, *sl, *dba, gen.Alternate).Graph
	case "star":
		g = gen.Star(*m, *sl, gen.Alternate).Graph
	case "chain":
		g = gen.Chain(*n).Graph
	case "cdf":
		g = gen.NewCDF(*m, *nt, *nl, *sl).Graph
	case "yago":
		g = gen.YAGOLike(*scale, *seed).Graph
	case "dbpedia":
		g = gen.DBPediaLike(*scale, *seed).Graph
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".snap") {
		err = graph.WriteSnapshot(f, g)
	} else {
		err = graph.WriteTriples(f, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
}
