package main

import (
	"fmt"
	"math/rand"

	"ctpquery/internal/graph"
)

// genMutations produces n replayable mutation batches against base. Every
// batch is validated by actually applying it to a throwaway live store as
// it is generated, so the emitted stream replays cleanly (same node
// resolution rules) against the base graph it was generated for.
//
// The mix leans toward edge churn — the workload the delta overlay is
// built for: mostly edge adds between existing nodes, some brand-new
// nodes arriving with an edge, some deletes (half of them targeting
// previously added edges so the delta shrinks as well as grows), and the
// occasional type attachment.
func genMutations(base *graph.Graph, n int, seed int64) ([]graph.Batch, error) {
	if base.NumNodes() == 0 {
		return nil, fmt.Errorf("cannot mutate an empty graph")
	}
	st := graph.NewStore(base, graph.StoreOptions{CompactThreshold: -1})
	defer st.Quiesce()
	r := rand.New(rand.NewSource(seed))

	// randomNode returns the label of a uniformly random node of the
	// current view (so later batches can reference nodes earlier batches
	// created).
	randomNode := func() string {
		v := st.View()
		return v.NodeLabel(graph.NodeID(r.Intn(v.NumNodes())))
	}
	// randomEdge returns a random live edge as a triple; ok is false when
	// the view has no live edges (or the sampler was unlucky).
	randomEdge := func() (graph.Triple, bool) {
		v := st.View()
		if v.NumEdges() == 0 {
			return graph.Triple{}, false
		}
		for try := 0; try < 8; try++ {
			e := graph.EdgeID(r.Intn(v.NumEdges()))
			if !v.EdgeAlive(e) {
				continue
			}
			return graph.Triple{
				Source: v.NodeLabel(v.Source(e)),
				Label:  v.EdgeLabel(e),
				Target: v.NodeLabel(v.Target(e)),
			}, true
		}
		return graph.Triple{}, false
	}
	randomLabel := func() string {
		if t, ok := randomEdge(); ok {
			return t.Label
		}
		return "linksTo"
	}

	var added []graph.Triple // delta edges eligible for targeted deletes
	var batches []graph.Batch
	newNodes := 0
	for attempts := 0; len(batches) < n && attempts < 20*n+100; attempts++ {
		var b graph.Batch
		for ops := 1 + r.Intn(3); ops > 0; ops-- {
			switch roll := r.Float64(); {
			case roll < 0.55:
				t := graph.Triple{Source: randomNode(), Label: randomLabel(), Target: randomNode()}
				b.AddEdges = append(b.AddEdges, t)
				added = append(added, t)
			case roll < 0.70:
				newNodes++
				label := fmt.Sprintf("mut%d", newNodes)
				b.AddNodes = append(b.AddNodes, graph.NodeAdd{Label: label})
				t := graph.Triple{Source: label, Label: randomLabel(), Target: randomNode()}
				b.AddEdges = append(b.AddEdges, t)
				added = append(added, t)
			case roll < 0.90:
				if len(added) > 0 && r.Intn(2) == 0 {
					i := r.Intn(len(added))
					b.DelEdges = append(b.DelEdges, added[i])
					added[i] = added[len(added)-1]
					added = added[:len(added)-1]
				} else if t, ok := randomEdge(); ok {
					b.DelEdges = append(b.DelEdges, t)
				}
			default:
				b.AddTypes = append(b.AddTypes, graph.TypeAdd{Node: randomNode(), Type: "mutated"})
			}
		}
		if b.Empty() {
			continue
		}
		// Validate by applying: a batch the store rejects (e.g. it sampled
		// an ambiguous label) is dropped and regenerated, so the written
		// stream replays without errors.
		if _, err := st.Mutate(b); err != nil {
			continue
		}
		batches = append(batches, b)
	}
	if len(batches) < n {
		return nil, fmt.Errorf("generated only %d of %d valid batches", len(batches), n)
	}
	return batches, nil
}
