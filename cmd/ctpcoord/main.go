// Command ctpcoord fronts a fleet of ctpserve shards with a
// fault-tolerant scatter-gather coordinator. It serves the same HTTP
// surface as a single shard (POST /query, GET /healthz, GET /stats,
// GET /metrics, GET /debug/traces), so clients and load balancers
// cannot tell the two apart — but behind it
// queries are routed health-aware across replicas, hedged when a
// primary straggles, retried with capped exponential backoff, cut off
// by per-backend circuit breakers, and merged deterministically across
// partitioned groups on the engine's canonical result order.
//
// Usage:
//
//	ctpcoord -shards http://a:8372|http://b:8372          # 1 group, 2 replicas
//	ctpcoord -shards http://a:8372,http://b:8372          # 2 partitioned groups
//	ctpcoord -shards 'http://a0|http://a1,http://b0'      # 2 groups, mixed
//
// -shards is comma-separated groups of pipe-separated replica base
// URLs: replicas inside a group answer the same data, distinct groups
// partition it and every gather scatters across all of them. When a
// whole group has no answering member the coordinator degrades
// gracefully: it returns the rows it has plus a structured
// "degraded": {"missing_shards": [...], "reason": ...} block instead of
// failing the query.
//
// On SIGINT/SIGTERM the coordinator drains like a shard: /healthz and
// /query answer 503 with Retry-After for -drain-grace, then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctpquery/internal/cluster"
	"ctpquery/internal/fault"
)

func main() {
	var (
		addr             = flag.String("addr", ":8371", "listen address")
		shards           = flag.String("shards", "", "shard topology: comma-separated groups of pipe-separated replica base URLs (e.g. 'http://a:8372|http://b:8372,http://c:8372')")
		probeInterval    = flag.Duration("probe-interval", 2*time.Second, "background /healthz sweep period")
		probeTimeout     = flag.Duration("probe-timeout", time.Second, "per-shard health probe timeout")
		defaultTimeout   = flag.Duration("default-timeout", 10*time.Second, "whole-gather budget when the request sets no timeout_ms")
		shardTimeout     = flag.Duration("shard-timeout", 0, "per-attempt cap on one shard query (0 = the remaining gather budget); set below the gather budget so retries and hedges can fire")
		hedgeAfter       = flag.Duration("hedge-after", 0, "hedge to another replica when the primary is silent this long (0 = hedging off)")
		maxAttempts      = flag.Int("max-attempts", 0, "attempts per group, hedges included (0 = members+1)")
		retryBase        = flag.Duration("retry-base", 25*time.Millisecond, "base of the capped exponential retry backoff (jittered ±25%)")
		retryMax         = flag.Duration("retry-max", time.Second, "cap on the retry backoff and on honored Retry-After holds")
		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive failures that open a shard's circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 3*time.Second, "open hold-time before a half-open probe is admitted")
		drainGrace       = flag.Duration("drain-grace", 0, "on SIGTERM, keep answering 503 draining this long before closing the listener (0 = shut down immediately)")
		faultSpec        = flag.String("fault", "", "DEV ONLY: arm fault-injection points, comma-separated point:kind[=duration][@hit[xcount]] specs (e.g. cluster.send:error@3x2)")
		traceOn          = flag.Bool("trace", true, "record per-gather traces into the flight recorder at /debug/traces and propagate Traceparent to shards")
		traceRing        = flag.Int("trace-ring", 256, "completed gather traces kept in the flight-recorder ring")
		slowQueryMS      = flag.Int64("slow-query-ms", 0, "log gathers slower than this many ms and pin their traces in the slow ring (0 = slow log off)")
	)
	flag.Parse()
	if err := run(coordConfig{
		addr:             *addr,
		shards:           *shards,
		probeInterval:    *probeInterval,
		probeTimeout:     *probeTimeout,
		defaultTimeout:   *defaultTimeout,
		shardTimeout:     *shardTimeout,
		hedgeAfter:       *hedgeAfter,
		maxAttempts:      *maxAttempts,
		retryBase:        *retryBase,
		retryMax:         *retryMax,
		breakerThreshold: *breakerThreshold,
		breakerCooldown:  *breakerCooldown,
		drainGrace:       *drainGrace,
		faultSpec:        *faultSpec,
		trace:            *traceOn,
		traceRing:        *traceRing,
		slowQueryMS:      *slowQueryMS,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctpcoord:", err)
		os.Exit(1)
	}
}

// coordConfig carries the parsed flags into run by name.
type coordConfig struct {
	addr             string
	shards           string
	probeInterval    time.Duration
	probeTimeout     time.Duration
	defaultTimeout   time.Duration
	shardTimeout     time.Duration
	hedgeAfter       time.Duration
	maxAttempts      int
	retryBase        time.Duration
	retryMax         time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	drainGrace       time.Duration
	faultSpec        string
	trace            bool
	traceRing        int
	slowQueryMS      int64
}

// parseShards turns the -shards grammar into cluster groups:
// commas separate groups, pipes separate replicas inside one.
func parseShards(spec string) ([]cluster.Group, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("need -shards 'url|url,url' (comma = partition group, pipe = replica)")
	}
	var groups []cluster.Group
	for i, gspec := range strings.Split(spec, ",") {
		g := cluster.Group{Name: fmt.Sprintf("g%d", i)}
		for _, u := range strings.Split(gspec, "|") {
			u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			g.Members = append(g.Members, &cluster.HTTPTransport{Base: u})
		}
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("group %d of -shards is empty", i)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

func run(cfg coordConfig) error {
	if cfg.faultSpec != "" {
		if err := fault.ParseSpec(cfg.faultSpec); err != nil {
			return fmt.Errorf("-fault: %w", err)
		}
		log.Printf("FAULT INJECTION armed (dev only): %s", cfg.faultSpec)
	}
	groups, err := parseShards(cfg.shards)
	if err != nil {
		return err
	}
	c, err := cluster.New(cluster.Config{
		ProbeInterval:    cfg.probeInterval,
		ProbeTimeout:     cfg.probeTimeout,
		DefaultTimeout:   cfg.defaultTimeout,
		ShardTimeout:     cfg.shardTimeout,
		HedgeAfter:       cfg.hedgeAfter,
		MaxAttempts:      cfg.maxAttempts,
		RetryBase:        cfg.retryBase,
		RetryMax:         cfg.retryMax,
		BreakerThreshold: cfg.breakerThreshold,
		BreakerCooldown:  cfg.breakerCooldown,
		DrainGrace:       cfg.drainGrace,
		TraceOff:         !cfg.trace,
		TraceRing:        cfg.traceRing,
		SlowQuery:        time.Duration(cfg.slowQueryMS) * time.Millisecond,
	}, groups)
	if err != nil {
		return err
	}
	members := 0
	for _, g := range groups {
		members += len(g.Members)
	}
	log.Printf("coordinating %d shard(s) in %d group(s); probing every %v",
		members, len(groups), cfg.probeInterval)
	if cfg.hedgeAfter > 0 {
		log.Printf("hedging stragglers after %v", cfg.hedgeAfter)
	}

	srv := &http.Server{Addr: cfg.addr, Handler: c.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProbing := c.StartProbing(ctx)
	defer stopProbing()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", cfg.addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Same drain choreography as ctpserve: flip to draining first so
	// health checkers observe the 503 before the listener disappears.
	c.SetDraining()
	log.Printf("shutting down, draining in-flight gathers")
	if cfg.drainGrace > 0 {
		log.Printf("drain grace: serving 503 draining for %v before closing the listener", cfg.drainGrace)
		select {
		case <-time.After(cfg.drainGrace):
		case err := <-errc:
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
