// Command ctpbench compares CTP evaluation algorithms on one
// parameterized synthetic workload, the interactive companion to the
// Figure 10/11 experiments.
//
// Usage:
//
//	ctpbench -topology star -m 5 -sl 4
//	ctpbench -topology comb -na 4 -ns 2 -sl 3 -dba 2 -algos GAM,ESP,MoLESP
//	ctpbench -topology chain -n 12
//
// With -json FILE it instead runs the fixed perf-tracking suite — the
// CSR-expansion and signature-dedup micro-benchmarks, the Figure 11
// workload grid, the parallel runtime sweep, the result-cache
// hit-vs-cold contrast, and the live-graph delta-overlay contrast —
// through testing.Benchmark and writes a
// machine-readable report (ns/op, allocs/op, bytes/op per entry), the
// format of the repository's BENCH_pr*.json trajectory files. -baseline
// FILE embeds a previous report for before/after comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ctpquery/internal/bench"
	"ctpquery/internal/core"
	"ctpquery/internal/gen"
)

func main() {
	var (
		topology = flag.String("topology", "star", "line | comb | star | chain")
		m        = flag.Int("m", 3, "seed sets (line, star)")
		sl       = flag.Int("sl", 3, "seed distance / segment length")
		na       = flag.Int("na", 2, "comb: number of bristles")
		ns       = flag.Int("ns", 2, "comb: segments per bristle")
		dba      = flag.Int("dba", 2, "comb: line nodes between bristles")
		n        = flag.Int("n", 10, "chain: length")
		algos    = flag.String("algos", "", "comma-separated algorithms (default: all)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-algorithm timeout")
		alt      = flag.Bool("alternate", true, "alternate edge directions")
		jsonOut  = flag.String("json", "", "run the perf-tracking suite and write a JSON report to FILE")
		baseline = flag.String("baseline", "", "embed a previous -json report under \"baseline\"")
		sections = flag.String("sections", "", "comma-separated subset of the -json suite to run: micro, grid, parallel, cache, cluster, obs, live (empty = all)")
	)
	flag.Parse()

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, *baseline, *sections); err != nil {
			fmt.Fprintln(os.Stderr, "ctpbench:", err)
			os.Exit(1)
		}
		return
	}

	dir := gen.Forward
	if *alt {
		dir = gen.Alternate
	}
	var w *gen.Workload
	switch *topology {
	case "line":
		w = gen.Line(*m, *sl-1, dir)
	case "comb":
		w = gen.Comb(*na, *ns, *sl, *dba, dir)
	case "star":
		w = gen.Star(*m, *sl, dir)
	case "chain":
		w = gen.Chain(*n)
	default:
		fmt.Fprintf(os.Stderr, "ctpbench: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	selected := core.Algorithms()
	if *algos != "" {
		selected = nil
		for _, name := range strings.Split(*algos, ",") {
			found := false
			for _, a := range core.Algorithms() {
				if strings.EqualFold(a.String(), strings.TrimSpace(name)) {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "ctpbench: unknown algorithm %q\n", name)
				os.Exit(2)
			}
		}
	}

	fmt.Printf("%s: %d nodes, %d edges, m=%d\n",
		w.Name, w.Graph.NumNodes(), w.Graph.NumEdges(), w.M())
	fmt.Printf("%-8s %10s %12s %10s %8s %8s\n",
		"algo", "time_ms", "provenances", "created", "results", "status")
	for _, alg := range selected {
		d, st := bench.MeasureCTP(w, alg, *timeout)
		status := "ok"
		if st.TimedOut {
			status = "timeout"
		} else if st.Results == 0 {
			status = "MISS"
		}
		fmt.Printf("%-8s %10.1f %12d %10d %8d %8s\n",
			alg, float64(d.Microseconds())/1000, st.Kept(), st.Created, st.Results, status)
	}
}
