package main

// The cluster section of the -json suite: the scatter-gather
// coordinator (internal/cluster) measured end to end over in-process
// shards. Shards serve from a warm result cache, so per-op time is
// dominated by coordinator work — routing, transport, response decode,
// and (for partitions) the canonical-key merge — not by the search
// engine, which the grid and parallel sections already track.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/cluster"
	"ctpquery/internal/serve"
)

const clusterBenchNote = "ns_per_op is one full coordinator gather (route, send, decode, merge) over " +
	"in-process shards answering from a warm result cache, so entries measure coordinator overhead, " +
	"not search time. overhead_vs_single = ns_per_op / ns_per_op(single-shard). one-killed runs with " +
	"a permanently failing replica: the first gathers fail over and trip its breaker, the timed steady " +
	"state routes straight to the survivor. 2-partitions scatters every gather to two groups holding " +
	"the same data and dedups the full overlap on canonical row keys — the worst-case merge."

// clusterBenchEntry is one topology scenario of the cluster sweep.
type clusterBenchEntry struct {
	Scenario   string  `json:"scenario"`
	Rows       int     `json:"rows"`
	NsPerOp    float64 `json:"ns_per_op"`
	Iterations int     `json:"iterations"`
	// OverheadVsSingle is this scenario's ns_per_op over the single-shard
	// ns_per_op — the price of replication, failover, or merging.
	OverheadVsSingle float64 `json:"overhead_vs_single"`
	// Degraded reports whether steady-state gathers carried a degraded
	// block (expected false everywhere: one-killed still has a healthy
	// replica covering the group).
	Degraded bool `json:"degraded"`
}

// deadTransport is a replica that lost its process: every send and
// probe fails immediately.
type deadTransport struct{ name string }

func (d *deadTransport) Target() string { return d.name }
func (d *deadTransport) Send(context.Context, *cluster.Request) (*cluster.Response, error) {
	return nil, errors.New("dead replica")
}
func (d *deadTransport) Probe(context.Context) (cluster.HealthReport, error) {
	return cluster.HealthReport{}, errors.New("dead replica")
}

// benchShard is one in-process replica with a warm-capable cache,
// running the parallel kernel (the canonical merge-key order the
// coordinator merges on comes from the exec collector).
func benchShard(g *ctpquery.Graph, name string) (cluster.Transport, error) {
	db, err := ctpquery.Open(g, &ctpquery.Options{
		Parallel: true, Parallelism: 2,
		Cache: &ctpquery.CacheConfig{MaxBytes: 64 << 20},
	})
	if err != nil {
		return nil, err
	}
	s, err := serve.New(db, serve.Config{DefaultTimeout: 10 * time.Second, MaxRows: 1000})
	if err != nil {
		return nil, err
	}
	return &cluster.LocalTransport{Name: name, Handler: s.Handler(false)}, nil
}

func clusterBench() ([]clusterBenchEntry, error) {
	g := ctpquery.RandomGraph(600, 1800, []string{"knows", "cites"}, 42)
	req := &cluster.Request{
		Query:     "SELECT ?w WHERE { CONNECT n3 n40 AS ?w MAX 5 LIMIT 200 . }",
		TimeoutMS: 10000,
	}
	// Breaker tuned so the one-killed scenario reaches steady state fast
	// and stays there: a long cooldown keeps half-open probes of the dead
	// replica out of the timed loop.
	cfg := cluster.Config{
		DefaultTimeout:   10 * time.Second,
		MaxAttempts:      3,
		RetryBase:        time.Millisecond,
		RetryMax:         10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	}

	scenarios := []struct {
		name   string
		groups func() ([]cluster.Group, error)
	}{
		{"single-shard", func() ([]cluster.Group, error) {
			a, err := benchShard(g, "s0")
			if err != nil {
				return nil, err
			}
			return []cluster.Group{{Name: "g0", Members: []cluster.Transport{a}}}, nil
		}},
		{"2-replicas-healthy", func() ([]cluster.Group, error) {
			a, err := benchShard(g, "r0")
			if err != nil {
				return nil, err
			}
			b, err := benchShard(g, "r1")
			if err != nil {
				return nil, err
			}
			return []cluster.Group{{Name: "g0", Members: []cluster.Transport{a, b}}}, nil
		}},
		{"2-replicas-one-killed", func() ([]cluster.Group, error) {
			a, err := benchShard(g, "r0")
			if err != nil {
				return nil, err
			}
			return []cluster.Group{{Name: "g0", Members: []cluster.Transport{a, &deadTransport{name: "r1"}}}}, nil
		}},
		{"2-partitions-merge", func() ([]cluster.Group, error) {
			a, err := benchShard(g, "p0")
			if err != nil {
				return nil, err
			}
			b, err := benchShard(g, "p1")
			if err != nil {
				return nil, err
			}
			return []cluster.Group{
				{Name: "p0", Members: []cluster.Transport{a}},
				{Name: "p1", Members: []cluster.Transport{b}},
			}, nil
		}},
	}

	ctx := context.Background()
	var out []clusterBenchEntry
	var singleNs float64
	for _, sc := range scenarios {
		groups, err := sc.groups()
		if err != nil {
			return nil, fmt.Errorf("cluster bench %s: %w", sc.name, err)
		}
		coord, err := cluster.New(cfg, groups)
		if err != nil {
			return nil, fmt.Errorf("cluster bench %s: %w", sc.name, err)
		}
		// Warm up out of band: populate every live shard's cache, run the
		// one-killed scenario's failovers, and open the dead replica's
		// breaker, so the timed loop measures the steady state.
		var warm *cluster.GatherResponse
		for i := 0; i < 2*cfg.BreakerThreshold; i++ {
			warm = coord.Gather(ctx, req)
			if warm.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("cluster bench %s: warm-up answered %d (%s)",
					sc.name, warm.StatusCode, warm.Error)
			}
		}
		e := clusterBenchEntry{
			Scenario: sc.name,
			Rows:     warm.RowCount,
			Degraded: warm.Degraded != nil,
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gr := coord.Gather(ctx, req)
				if gr.StatusCode != http.StatusOK {
					b.Fatalf("gather answered %d (%s)", gr.StatusCode, gr.Error)
				}
				if gr.RowCount != e.Rows {
					b.Fatalf("row count diverged: %d, want %d", gr.RowCount, e.Rows)
				}
				if (gr.Degraded != nil) != e.Degraded {
					b.Fatalf("degraded state flapped mid-bench")
				}
			}
		})
		e.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		e.Iterations = r.N
		if sc.name == "single-shard" {
			singleNs = e.NsPerOp
		}
		if singleNs > 0 {
			e.OverheadVsSingle = e.NsPerOp / singleNs
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-24s cluster %12.0f ns/op  rows=%d  (x%.2f vs single)\n",
			sc.name, e.NsPerOp, e.Rows, e.OverheadVsSingle)
	}
	return out, nil
}
