package main

// The -json perf-tracking suite: a fixed set of micro- and workload
// benchmarks run through testing.Benchmark, emitted as machine-readable
// JSON so the repository can track the hot-path trajectory across PRs
// (BENCH_pr2.json onward). Entries mirror the root-level testing.B
// benchmarks: the CSR expansion and signature-dedup micro-benchmarks plus
// the Figure 11 GAM-variant grid.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Description string          `json:"description"`
	GoVersion   string          `json:"go_version"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Benchmarks  []benchEntry    `json:"benchmarks"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
}

func writeJSONReport(path, baselinePath string) error {
	report := benchReport{
		Description: "ctpquery perf-tracking suite: CSR expansion, signature dedup, Figure 11 GAM-variant grid",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	run := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %10d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	// CSR expansion: touch every incident edge of every node.
	rng := rand.New(rand.NewSource(7))
	g := gen.Random(5000, 20000, []string{"knows", "cites", "funds", "worksFor"}, rng)
	run("CSRExpansion/random-5000x20000", func(b *testing.B) {
		b.ReportAllocs()
		var sum int64
		for i := 0; i < b.N; i++ {
			for n := 0; n < g.NumNodes(); n++ {
				for _, e := range g.IncidentEdges(graph.NodeID(n)) {
					sum += int64(e)
				}
			}
		}
		_ = sum
	})

	// Signature dedup: hash + membership probe against a seeded history
	// (a stand-alone replica of the kernels' collision-checked set).
	sets := make([][]graph.EdgeID, 4096)
	hist := make(map[uint64][][]graph.EdgeID, len(sets))
	srng := rand.New(rand.NewSource(3))
	for i := range sets {
		n := srng.Intn(11)
		s := make([]graph.EdgeID, n)
		for j := range s {
			s[j] = graph.EdgeID(srng.Intn(1 << 20))
		}
		sets[i] = s
		sig := tree.EdgeSetSig(s)
		hist[sig] = append(hist[sig], s)
	}
	run("SignatureDedup/hist-4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := sets[i%len(sets)]
			sig := tree.EdgeSetSig(set)
			found := false
			for _, cand := range hist[sig] {
				if len(cand) == len(set) {
					eq := true
					for j := range cand {
						if cand[j] != set[j] {
							eq = false
							break
						}
					}
					if eq {
						found = true
						break
					}
				}
			}
			if !found {
				b.Fatal("seeded set missing")
			}
		}
	})

	// The Figure 11 grid: GAM pruning variants on the benchmark workloads.
	workloads := []struct {
		name string
		w    *gen.Workload
	}{
		{"Fig11Line/m=3_sL=6", gen.Line(3, 5, gen.Alternate)},
		{"Fig11Line/m=10_sL=3", gen.Line(10, 2, gen.Alternate)},
		{"Fig11Comb/nA=4_sL=3", gen.Comb(4, 2, 3, 2, gen.Alternate)},
		{"Fig11Comb/nA=6_sL=2", gen.Comb(6, 2, 2, 2, gen.Alternate)},
		{"Fig11Star/m=5_sL=4", gen.Star(5, 4, gen.Alternate)},
		{"Fig11Star/m=10_sL=2", gen.Star(10, 2, gen.Alternate)},
	}
	for _, wl := range workloads {
		for _, alg := range core.GAMFamily() {
			wl, alg := wl, alg
			run(wl.name+"/"+alg.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, _, err := core.Search(wl.w.Graph, core.Explicit(wl.w.Seeds...), core.Options{
						Algorithm: alg,
						Filters:   eql.Filters{Timeout: 5 * time.Second},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s is not valid JSON", baselinePath)
		}
		report.Baseline = json.RawMessage(raw)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
