package main

// The -json perf-tracking suite: a fixed set of micro- and workload
// benchmarks run through testing.Benchmark, emitted as machine-readable
// JSON so the repository can track the hot-path trajectory across PRs
// (BENCH_pr2.json onward). Entries mirror the root-level testing.B
// benchmarks: the CSR expansion and signature-dedup micro-benchmarks plus
// the Figure 11 GAM-variant grid.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/core"
	"ctpquery/internal/eql"
	// Linked for its side effect: registers the parallel runtime the
	// sweep below exercises through core.Options.Parallelism.
	_ "ctpquery/internal/exec"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/tree"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Description string       `json:"description"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	// ParallelSweep measures the sharded runtime at 1/2/4/GOMAXPROCS
	// workers per workload; ParallelSweepNote explains the two speedup
	// columns.
	ParallelSweepNote string       `json:"parallel_sweep_note,omitempty"`
	ParallelSweep     []sweepEntry `json:"parallel_sweep,omitempty"`
	// CacheBench contrasts the serving path with and without the query
	// result cache (internal/qcache through the ctpquery facade) on the
	// Figure 11 workloads expressed as EQL queries.
	CacheBenchNote string            `json:"cache_bench_note,omitempty"`
	CacheBench     []cacheBenchEntry `json:"cache_bench,omitempty"`
	// ClusterBench measures the scatter-gather coordinator
	// (internal/cluster) end to end over in-process shards: single shard,
	// replicated, replicated with one replica killed, and partitioned
	// with a canonical-key merge.
	ClusterBenchNote string              `json:"cluster_bench_note,omitempty"`
	ClusterBench     []clusterBenchEntry `json:"cluster_bench,omitempty"`
	// ObsOverhead contrasts the serving path with tracing disabled and
	// enabled (internal/obs through internal/serve) on a Figure 11
	// subset, pinning the claim that enabled tracing costs ≲2%.
	ObsOverheadNote string          `json:"obs_overhead_note,omitempty"`
	ObsOverhead     []obsBenchEntry `json:"obs_overhead,omitempty"`
	// LiveBench contrasts the frozen CSR with a live delta-overlay store
	// at increasing delta fill, and LiveChurn measures sustained mixed
	// read/write throughput with background compaction landing.
	LiveBenchNote string           `json:"live_bench_note,omitempty"`
	LiveBench     []liveBenchEntry `json:"live_bench,omitempty"`
	LiveFig11     []liveFig11Entry `json:"live_fig11,omitempty"`
	LiveChurn     *liveChurnEntry  `json:"live_churn,omitempty"`
	Baseline      json.RawMessage  `json:"baseline,omitempty"`
}

// cacheBenchEntry is one Figure 11 workload measured cold (full BGP +
// CTP pipeline, no cache) and hot (served from the result cache).
type cacheBenchEntry struct {
	Workload    string  `json:"workload"`
	Query       string  `json:"query"`
	Rows        int     `json:"rows"`
	ColdNsPerOp float64 `json:"cold_ns_per_op"`
	HitNsPerOp  float64 `json:"hit_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// sweepEntry is one (workload, worker count) cell of the parallelism
// sweep. SpeedupWall compares wall clock against the 1-worker run on
// this machine; SpeedupSpan compares spans — the longest per-worker
// thread-CPU time, i.e. the wall clock a machine with >= workers free
// cores would observe — against the 1-worker span, so both columns are
// self-consistent ratios (the workers=1 row reads 1.00 in each). On a
// box with GOMAXPROCS < workers the wall column cannot exceed 1 by
// construction (the workers timeslice one core) and the span column is
// the honest scaling measurement.
type sweepEntry struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	SpanNsPerOp float64 `json:"span_ns_per_op"`
	SpeedupWall float64 `json:"speedup_wall"`
	SpeedupSpan float64 `json:"speedup_span"`
	Kept        int     `json:"kept"`
	WorkerOps   []int   `json:"worker_ops"`
	Stolen      int     `json:"stolen"`
	Shipped     int     `json:"shipped"`
}

// namedWorkload pairs a Figure 11 workload with its report name.
type namedWorkload struct {
	name string
	w    *gen.Workload
}

// fig11Workloads builds the Figure 11 workload grid shared by the
// variant grid, the parallel sweep, and the cache bench — one list, so
// the three sections always measure the same graphs. The largest star
// (m=12, sL=3; seconds per sequential run) is skipped by the variant
// grid, where it would be multiplied by every pruning variant including
// unpruned GAM, and included everywhere else.
func fig11Workloads(withLargestStar bool) []namedWorkload {
	ws := []namedWorkload{
		{"Fig11Line/m=3_sL=6", gen.Line(3, 5, gen.Alternate)},
		{"Fig11Line/m=10_sL=3", gen.Line(10, 2, gen.Alternate)},
		{"Fig11Comb/nA=4_sL=3", gen.Comb(4, 2, 3, 2, gen.Alternate)},
		{"Fig11Comb/nA=6_sL=2", gen.Comb(6, 2, 2, 2, gen.Alternate)},
		{"Fig11Star/m=5_sL=4", gen.Star(5, 4, gen.Alternate)},
		{"Fig11Star/m=10_sL=2", gen.Star(10, 2, gen.Alternate)},
	}
	if withLargestStar {
		ws = append(ws, namedWorkload{"Fig11Star/m=12_sL=3", gen.Star(12, 3, gen.Alternate)})
	}
	return ws
}

// sectionSet resolves the -sections flag: empty selects every section,
// otherwise only the named ones run (unknown names are an error so a
// typo cannot silently produce an empty report).
type sectionSet map[string]bool

func parseSections(spec string) (sectionSet, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil // nil = all sections
	}
	known := map[string]bool{"micro": true, "grid": true, "parallel": true, "cache": true, "cluster": true, "obs": true, "live": true}
	s := sectionSet{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if !known[name] {
			return nil, fmt.Errorf("unknown section %q (want micro, grid, parallel, cache, cluster, obs, live)", name)
		}
		s[name] = true
	}
	return s, nil
}

func (s sectionSet) has(name string) bool { return s == nil || s[name] }

func writeJSONReport(path, baselinePath, sections string) error {
	sel, err := parseSections(sections)
	if err != nil {
		return err
	}
	report := benchReport{
		Description: "ctpquery perf-tracking suite: CSR expansion, signature dedup, Figure 11 GAM-variant grid, parallel runtime sweep, result-cache hit vs cold path, cluster scatter-gather sweep, observability overhead contrast, live-graph delta-overlay contrast",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	run := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %10d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	if sel.has("micro") {
		runMicro(run)
	}

	// The Figure 11 grid: GAM pruning variants on the benchmark workloads.
	if sel.has("grid") {
		for _, wl := range fig11Workloads(false) {
			for _, alg := range core.GAMFamily() {
				wl, alg := wl, alg
				run(wl.name+"/"+alg.String(), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						_, _, err := core.Search(wl.w.Graph, core.Explicit(wl.w.Seeds...), core.Options{
							Algorithm: alg,
							Filters:   eql.Filters{Timeout: 5 * time.Second},
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}

	if sel.has("parallel") {
		report.ParallelSweepNote = "speedup_wall = ns_per_op(workers=1)/ns_per_op(this run) on this machine; " +
			"speedup_span = span_ns_per_op(workers=1)/span_ns_per_op(this run), where span is the longest " +
			"per-worker thread-CPU time — the wall time a machine with >= workers free cores would observe. " +
			"With num_cpu < workers the workers timeslice one core, so wall cannot improve; span is " +
			"the scaling measurement."
		sweep, err := parallelSweep()
		if err != nil {
			return err
		}
		report.ParallelSweep = sweep
	}

	if sel.has("cache") {
		report.CacheBenchNote = "cold_ns_per_op runs the full facade pipeline per request; hit_ns_per_op serves " +
			"the identical query from the result cache (speedup = cold/hit). Entries are complete results — " +
			"timed-out or truncated runs are never admitted, so the hit path can only return full answers."
		cache, err := cacheBench()
		if err != nil {
			return err
		}
		report.CacheBench = cache
	}

	if sel.has("cluster") {
		report.ClusterBenchNote = clusterBenchNote
		cl, err := clusterBench()
		if err != nil {
			return err
		}
		report.ClusterBench = cl
	}

	if sel.has("obs") {
		report.ObsOverheadNote = "off_ns_per_op serves the workload's CONNECT query through the full handler with " +
			"tracing disabled (nil spans behind one atomic load); on_ns_per_op records the complete span tree into " +
			"the flight recorder per request (per-side per-request medians). The two sides alternate request by " +
			"request and overhead_pct is the median over adjacent pairs of (on/off - 1)*100 — the drift-cancelling " +
			"paired estimate — and the observability layer claims <=2% on these pipeline-bound workloads."
		ob, err := obsBench()
		if err != nil {
			return err
		}
		report.ObsOverhead = ob
	}

	if sel.has("live") {
		report.LiveBenchNote = liveBenchNote
		lb, fig11, churn, err := liveBench()
		if err != nil {
			return err
		}
		report.LiveBench = lb
		report.LiveFig11 = fig11
		report.LiveChurn = churn
	}

	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s is not valid JSON", baselinePath)
		}
		report.Baseline = json.RawMessage(raw)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// runMicro runs the two hot-path micro-benchmarks (CSR expansion and
// signature dedup).
func runMicro(run func(name string, f func(b *testing.B))) {
	// CSR expansion: touch every incident edge of every node.
	rng := rand.New(rand.NewSource(7))
	g := gen.Random(5000, 20000, []string{"knows", "cites", "funds", "worksFor"}, rng)
	run("CSRExpansion/random-5000x20000", func(b *testing.B) {
		b.ReportAllocs()
		var sum int64
		for i := 0; i < b.N; i++ {
			for n := 0; n < g.NumNodes(); n++ {
				for _, e := range g.IncidentEdges(graph.NodeID(n)) {
					sum += int64(e)
				}
			}
		}
		_ = sum
	})

	// Signature dedup: hash + membership probe against a seeded history
	// (a stand-alone replica of the kernels' collision-checked set).
	sets := make([][]graph.EdgeID, 4096)
	hist := make(map[uint64][][]graph.EdgeID, len(sets))
	srng := rand.New(rand.NewSource(3))
	for i := range sets {
		n := srng.Intn(11)
		s := make([]graph.EdgeID, n)
		for j := range s {
			s[j] = graph.EdgeID(srng.Intn(1 << 20))
		}
		sets[i] = s
		sig := tree.EdgeSetSig(s)
		hist[sig] = append(hist[sig], s)
	}
	run("SignatureDedup/hist-4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := sets[i%len(sets)]
			sig := tree.EdgeSetSig(set)
			found := false
			for _, cand := range hist[sig] {
				if len(cand) == len(set) {
					eq := true
					for j := range cand {
						if cand[j] != set[j] {
							eq = false
							break
						}
					}
					if eq {
						found = true
						break
					}
				}
			}
			if !found {
				b.Fatal("seeded set missing")
			}
		}
	})
}

// parallelSweep measures the sharded runtime (MoLESP, the paper's
// recommended algorithm) on the Figure 11 workload family at 1, 2, 4,
// and GOMAXPROCS workers. Wall time comes from testing.Benchmark; span
// and per-worker effort come from instrumented runs (median over
// repetitions).
func parallelSweep() ([]sweepEntry, error) {
	degrees := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(degrees)
	seen := map[int]bool{}

	var out []sweepEntry
	for _, wl := range fig11Workloads(true) {
		var baseWall, baseSpan float64 // the workers=1 run
		for _, k := range degrees {
			if k < 1 || seen[k] {
				continue
			}
			seen[k] = true
			opts := core.Options{
				Algorithm:   core.MoLESP,
				Parallelism: k,
				Filters:     eql.Filters{Timeout: 30 * time.Second},
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Search(wl.w.Graph, core.Explicit(wl.w.Seeds...), opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			wallNs := float64(r.T.Nanoseconds()) / float64(r.N)
			span, kept, workerOps, stolen, shipped, err := measureSpan(wl.w, opts)
			if err != nil {
				return nil, fmt.Errorf("parallel sweep %s workers=%d: %w", wl.name, k, err)
			}
			e := sweepEntry{
				Workload:    wl.name,
				Workers:     k,
				NsPerOp:     wallNs,
				SpanNsPerOp: span,
				Kept:        kept,
				WorkerOps:   workerOps,
				Stolen:      stolen,
				Shipped:     shipped,
			}
			if k == 1 {
				baseWall, baseSpan = wallNs, span
			}
			if baseWall > 0 {
				e.SpeedupWall = baseWall / wallNs
			}
			if baseSpan > 0 && span > 0 {
				e.SpeedupSpan = baseSpan / span
			}
			out = append(out, e)
			fmt.Fprintf(os.Stderr, "%-24s workers=%d %12.0f ns/op wall  %12.0f ns/op span  (wall x%.2f, span x%.2f)\n",
				wl.name, k, wallNs, span, e.SpeedupWall, e.SpeedupSpan)
		}
		for k := range seen {
			delete(seen, k)
		}
	}
	return out, nil
}

// cacheBench measures the serving path on the Figure 11 workloads: the
// graphs round-trip through the triples format into the public facade
// (every generated node is uniquely labeled), the m seed sets become the
// members of one EQL CONNECT, and each workload is then timed cold (no
// cache, full pipeline per request) and hot (identical query served from
// the result cache).
func cacheBench() ([]cacheBenchEntry, error) {
	ctx := context.Background()
	var out []cacheBenchEntry
	for _, wl := range fig11Workloads(true) {
		var buf bytes.Buffer
		if err := graph.WriteTriples(&buf, wl.w.Graph); err != nil {
			return nil, fmt.Errorf("cache bench %s: %w", wl.name, err)
		}
		g, err := ctpquery.LoadTriples(&buf)
		if err != nil {
			return nil, fmt.Errorf("cache bench %s: %w", wl.name, err)
		}
		members := make([]string, wl.w.M())
		for i, set := range wl.w.Seeds {
			members[i] = wl.w.Graph.NodeLabel(set[0])
		}
		query := fmt.Sprintf("SELECT ?w WHERE { CONNECT %s AS ?w . }", strings.Join(members, " "))

		cold, err := ctpquery.Open(g, nil)
		if err != nil {
			return nil, err
		}
		warm, err := ctpquery.Open(g, nil, ctpquery.WithCache(256<<20, 0))
		if err != nil {
			return nil, err
		}
		res, info, err := warm.QueryWithInfo(ctx, query)
		if err != nil {
			return nil, fmt.Errorf("cache bench %s: %w", wl.name, err)
		}
		if info.Hit || res.TimedOut() || res.Truncated() {
			return nil, fmt.Errorf("cache bench %s: warm-up not admissible (info %+v)", wl.name, info)
		}
		e := cacheBenchEntry{Workload: wl.name, Query: query, Rows: res.Len()}

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cold.Query(ctx, query); err != nil {
					b.Fatal(err)
				}
			}
		})
		e.ColdNsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)

		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, info, err := warm.QueryWithInfo(ctx, query)
				if err != nil {
					b.Fatal(err)
				}
				if !info.Hit || res.Len() != e.Rows {
					b.Fatalf("hit path diverged (info %+v, %d rows, want %d)", info, res.Len(), e.Rows)
				}
			}
		})
		e.HitNsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		if e.HitNsPerOp > 0 {
			e.Speedup = e.ColdNsPerOp / e.HitNsPerOp
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-24s cache  %12.0f ns/op cold  %12.0f ns/op hit   (x%.0f)\n",
			wl.name, e.ColdNsPerOp, e.HitNsPerOp, e.Speedup)
	}
	return out, nil
}

// measureSpan runs the search several times and reports the median span
// (longest per-worker thread-CPU time) plus representative per-worker
// effort counters.
func measureSpan(w *gen.Workload, opts core.Options) (span float64, kept int, workerOps []int, stolen, shipped int, err error) {
	const reps = 5
	spans := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		_, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), opts)
		if err != nil {
			return 0, 0, nil, 0, 0, err
		}
		var s int64
		for _, ws := range st.Workers {
			if ws.BusyNS > s {
				s = ws.BusyNS
			}
		}
		spans = append(spans, float64(s))
		if rep == 0 {
			kept = st.Kept()
			workerOps = workerOps[:0]
			stolen, shipped = 0, 0
			for _, ws := range st.Workers {
				workerOps = append(workerOps, ws.Ops)
				stolen += ws.Stolen
				shipped += ws.Shipped
			}
		}
	}
	sort.Float64s(spans)
	return spans[len(spans)/2], kept, workerOps, stolen, shipped, nil
}
