package main

// obsBench: the observability-overhead contrast. Each Figure 11
// workload (one per topology) is served twice through the full serving
// stack — once with tracing disabled (the span API hands out nil spans
// behind one atomic load) and once with tracing enabled (a full span
// tree recorded into the flight recorder per request) — so the
// trajectory pins the claim that enabled tracing stays within ~2% of
// the untraced serving path on pipeline-bound queries. Requests go
// through the real handler via httptest.NewRecorder: same JSON decode,
// serving path, and response encode on both sides of the contrast, no
// network between them.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"ctpquery"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/serve"
)

// obsBenchEntry is one workload measured with tracing off and on.
// OverheadPct is the paired estimate of the cost of recording the span
// tree — the median over adjacent request pairs of (on/off − 1)·100 —
// while Off/OnNsPerOp are each side's per-request median.
type obsBenchEntry struct {
	Workload    string  `json:"workload"`
	Query       string  `json:"query"`
	Rows        int     `json:"rows"`
	Spans       int     `json:"spans"`
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

// queryBenchResponse is the slice of the serve response the bench
// inspects.
type queryBenchResponse struct {
	RowCount int    `json:"row_count"`
	TimedOut bool   `json:"timed_out"`
	TraceID  string `json:"trace_id"`
}

// obsHandler builds the serving stack over a Figure 11 workload graph,
// with tracing on or off, and the CONNECT query for its seed sets. No
// result cache: every request runs the full pipeline, the path the
// overhead claim is about.
func obsHandler(w *gen.Workload, traceOff bool) (http.Handler, *serve.Server, string, error) {
	var buf bytes.Buffer
	if err := graph.WriteTriples(&buf, w.Graph); err != nil {
		return nil, nil, "", err
	}
	g, err := ctpquery.LoadTriples(&buf)
	if err != nil {
		return nil, nil, "", err
	}
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		return nil, nil, "", err
	}
	s, err := serve.New(db, serve.Config{
		DefaultTimeout: 30 * time.Second,
		TraceOff:       traceOff,
	})
	if err != nil {
		return nil, nil, "", err
	}
	members := make([]string, w.M())
	for i, set := range w.Seeds {
		members[i] = w.Graph.NodeLabel(set[0])
	}
	query := fmt.Sprintf("SELECT ?w WHERE { CONNECT %s AS ?w . }", strings.Join(members, " "))
	return s.Handler(false), s, query, nil
}

// serveOnce drives one request through the handler in process and
// decodes the response.
func serveOnce(h http.Handler, body []byte) (*queryBenchResponse, error) {
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("query answered %d: %s", rec.Code, rec.Body.String())
	}
	var out queryBenchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func obsBench() ([]obsBenchEntry, error) {
	// One workload per Figure 11 topology, the pipeline-bound members of
	// the shared grid (hundreds of microseconds to milliseconds per
	// request) — the regime the ≲2% claim is about. The ~30µs smallest
	// line is excluded deliberately: against a request that barely runs
	// the pipeline, the fixed per-trace cost (a handful of span records)
	// reads as tens of percent and measures nothing but the constant.
	ws := fig11Workloads(false)
	subset := []namedWorkload{ws[1], ws[2], ws[4]}

	var out []obsBenchEntry
	for _, wl := range subset {
		e, err := obsBench1(wl)
		if err != nil {
			return nil, fmt.Errorf("obs bench %s: %w", wl.name, err)
		}
		out = append(out, *e)
	}
	return out, nil
}

// obsBench1 measures one workload on both sides of the contrast.
func obsBench1(wl namedWorkload) (*obsBenchEntry, error) {
	offHandler, _, query, err := obsHandler(wl.w, true)
	if err != nil {
		return nil, err
	}
	onHandler, onSrv, _, err := obsHandler(wl.w, false)
	if err != nil {
		return nil, err
	}
	reqBody, _ := json.Marshal(map[string]any{"query": query, "omit_trees": true})

	// Warm up both stacks and sanity-check the contrast: the untraced
	// response must carry no trace ID, the traced one must, and both
	// must compute the same result.
	offResp, err := serveOnce(offHandler, reqBody)
	if err != nil {
		return nil, err
	}
	if offResp.TimedOut {
		return nil, fmt.Errorf("untraced warm-up timed out")
	}
	if offResp.TraceID != "" {
		return nil, fmt.Errorf("tracing disabled yet response carries trace_id")
	}
	onResp, err := serveOnce(onHandler, reqBody)
	if err != nil {
		return nil, err
	}
	if onResp.TraceID == "" {
		return nil, fmt.Errorf("tracing enabled yet response carries no trace_id")
	}
	if onResp.RowCount != offResp.RowCount {
		return nil, fmt.Errorf("traced and untraced runs disagree: %d vs %d rows",
			onResp.RowCount, offResp.RowCount)
	}
	e := &obsBenchEntry{Workload: wl.name, Query: query, Rows: offResp.RowCount}
	if trace := onSrv.Tracer().Trace(onResp.TraceID); trace != nil {
		e.Spans = len(trace.Spans)
	}

	// Measurement discipline: the contrast is a few percent at most, far
	// below the noise of coarse back-to-back benchmark runs on a shared
	// machine (two identical untraced runs were observed ±10% apart). So
	// the two sides alternate REQUEST BY REQUEST — any disturbance
	// slower than one request (co-tenant bursts, frequency drift, GC of
	// the surrounding suite) lands on both sides alike — and each
	// adjacent off/on pair contributes one duration ratio. The estimate
	// is the median over all pairs: drift cancels inside each pair by
	// adjacency, scheduling spikes fall to the median, and hundreds to
	// thousands of pairs tighten the estimate. Within a pair the order
	// flips every iteration so a monotone trend cannot bias the ratio.
	timeOne := func(h http.Handler) (float64, error) {
		start := time.Now()
		if _, err := serveOnce(h, reqBody); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Nanoseconds()), nil
	}
	per, err := timeOne(offHandler)
	if err != nil {
		return nil, err
	}
	pairs := int(1.5e9 / (2 * per))
	if pairs < 50 {
		pairs = 50
	} else if pairs > 5000 {
		pairs = 5000
	}
	ratios := make([]float64, 0, pairs)
	offs := make([]float64, 0, pairs)
	ons := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		var off, on float64
		var err error
		if i%2 == 0 {
			off, err = timeOne(offHandler)
			if err == nil {
				on, err = timeOne(onHandler)
			}
		} else {
			on, err = timeOne(onHandler)
			if err == nil {
				off, err = timeOne(offHandler)
			}
		}
		if err != nil {
			return nil, err
		}
		offs = append(offs, off)
		ons = append(ons, on)
		ratios = append(ratios, on/off)
	}
	sort.Float64s(ratios)
	sort.Float64s(offs)
	sort.Float64s(ons)
	e.OffNsPerOp = offs[len(offs)/2]
	e.OnNsPerOp = ons[len(ons)/2]
	e.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	fmt.Fprintf(os.Stderr, "%-24s obs    %12.0f ns/op off   %12.0f ns/op on    (%+.2f%%, %d spans)\n",
		wl.name, e.OffNsPerOp, e.OnNsPerOp, e.OverheadPct, e.Spans)
	return e, nil
}
