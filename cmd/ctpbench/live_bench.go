package main

// The "live" section pins the cost of the mutable delta overlay
// (internal/graph.Store): the same query workload is timed against the
// frozen CSR, a live store with an empty delta (the overlay fast path —
// expected within a few percent of frozen), and live stores with the
// delta filled to 5% and 20% of the base edge count (the merged-scan
// slow path compaction exists to bound). A second experiment measures
// sustained mixed read/write throughput with background compaction
// landing mid-stream.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctpquery"
	"ctpquery/internal/graph"
)

// liveBenchEntry is one delta-fill variant of the query-latency
// experiment. VsFrozen is ns_per_op relative to the frozen-CSR row
// (frozen reads 1.00).
type liveBenchEntry struct {
	Variant    string  `json:"variant"`
	DeltaEdges int     `json:"delta_edges"`
	Epoch      uint64  `json:"epoch"`
	NsPerOp    float64 `json:"ns_per_op"`
	VsFrozen   float64 `json:"vs_frozen"`
}

// liveFig11Entry is one Figure 11 workload's frozen-CSR vs
// empty-delta-live contrast: the same CONNECT query cold-executed
// through the facade on both, pinning the overlay fast-path claim on
// the paper's own search workloads (VsFrozen ~1.0).
type liveFig11Entry struct {
	Workload      string  `json:"workload"`
	Rows          int     `json:"rows"`
	FrozenNsPerOp float64 `json:"frozen_ns_per_op"`
	LiveNsPerOp   float64 `json:"live_ns_per_op"`
	VsFrozen      float64 `json:"vs_frozen"`
}

// liveChurnEntry reports the sustained mixed read/write experiment:
// one writer applying edge-add/delete batches flat out and one reader
// querying flat out, with the compaction threshold low enough that
// background compactions land repeatedly under the churn.
type liveChurnEntry struct {
	DurationS       float64 `json:"duration_s"`
	MutateOpsPerSec float64 `json:"mutate_ops_per_sec"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	FinalEpoch      uint64  `json:"final_epoch"`
	Compactions     uint64  `json:"compactions"`
	CompactAborts   uint64  `json:"compact_aborts"`
	DeltaEdgesAfter int     `json:"delta_edges_after"`
}

const liveBenchNote = "Each variant times the same two-hop query workload (no result cache) on a " +
	"5000x20000 random graph; variants are measured interleaved over 5 reps, ns_per_op is the " +
	"median per variant and vs_frozen the median of per-rep ratios against the same rep's frozen " +
	"run (drift-cancelling, as in obs_overhead). 'frozen' is the " +
	"immutable CSR, 'live-0pct' a live store with an empty " +
	"delta (vs_frozen ~1.0 is the overlay's fast-path claim), 'live-5pct'/'live-20pct' live stores " +
	"with the delta filled to that fraction of the base edge count and compaction disabled — the " +
	"merged-scan cost compaction exists to bound. Delta fills add edges, so the deeper fills also " +
	"return more rows; vs_frozen is an upper bound on pure overlay overhead. live_fig11 repeats the " +
	"frozen vs empty-delta contrast on the Figure 11 CONNECT workloads (obs-bench subset) through " +
	"the full facade pipeline — the same search kernels over the overlay fast path. live_churn runs a " +
	"writer and a reader flat out for ~1.5s with a low compaction threshold, so the throughput " +
	"numbers include epochs republished by background compactions landing mid-stream."

// medianOf sorts its argument in place and returns the median.
func medianOf(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// liveQueryWorkload builds a deterministic two-hop query set over the
// random graph's n1..nN labels.
func liveQueryWorkload(nodes, count int) []string {
	qs := make([]string, count)
	for i := range qs {
		qs[i] = fmt.Sprintf("SELECT ?x ?y WHERE { n%d knows ?x . ?x cites ?y . }", 1+(i*379)%nodes)
	}
	return qs
}

// fillDelta applies edge-add batches until the overlay holds want
// delta edges, drawing endpoints from the existing n1..nN labels so no
// batch can fail validation.
func fillDelta(g *ctpquery.Graph, nodes, want int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"knows", "cites", "funds", "worksFor"}
	for added := 0; added < want; {
		n := want - added
		if n > 256 {
			n = 256
		}
		var b ctpquery.Batch
		for i := 0; i < n; i++ {
			b.AddEdges = append(b.AddEdges, ctpquery.Triple{
				Source: fmt.Sprintf("n%d", 1+rng.Intn(nodes)),
				Label:  labels[rng.Intn(len(labels))],
				Target: fmt.Sprintf("n%d", 1+rng.Intn(nodes)),
			})
		}
		if _, err := g.Mutate(b); err != nil {
			return err
		}
		added += n
	}
	return nil
}

func liveBench() ([]liveBenchEntry, []liveFig11Entry, *liveChurnEntry, error) {
	const (
		nodes = 5000
		edges = 20000
		seed  = 11
	)
	ctx := context.Background()
	labels := []string{"knows", "cites", "funds", "worksFor"}
	queries := liveQueryWorkload(nodes, 16)

	// All variants are built up front and measured interleaved, one
	// testing.Benchmark run per variant per rep: the differences of
	// interest are a few percent, and machine drift across a long suite
	// run swamps them unless each rep's ratio is taken against a frozen
	// run from the same moment (the obs bench's paired estimator).
	variants := []struct {
		name string
		fill float64
	}{
		{"frozen", -1},
		{"live-0pct", 0},
		{"live-5pct", 0.05},
		{"live-20pct", 0.20},
	}
	out := make([]liveBenchEntry, len(variants))
	dbs := make([]*ctpquery.DB, len(variants))
	graphs := make([]*ctpquery.Graph, len(variants))
	for i, v := range variants {
		g := ctpquery.RandomGraph(nodes, edges, labels, seed)
		out[i] = liveBenchEntry{Variant: v.name}
		if v.fill >= 0 {
			g = g.LiveWithConfig(ctpquery.LiveConfig{CompactThreshold: -1})
			if err := fillDelta(g, nodes, int(v.fill*edges), seed+7); err != nil {
				return nil, nil, nil, fmt.Errorf("live bench %s: %w", v.name, err)
			}
			st, _ := g.StoreStats()
			out[i].DeltaEdges, out[i].Epoch = st.DeltaEdges, st.Epoch
		}
		db, err := ctpquery.Open(g, nil)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("live bench %s: %w", v.name, err)
		}
		// Warm once so parse/plan setup and lazy indexes are off the clock.
		if _, err := db.Query(ctx, queries[0]); err != nil {
			return nil, nil, nil, fmt.Errorf("live bench %s: %w", v.name, err)
		}
		graphs[i], dbs[i] = g, db
	}

	const reps = 5
	ns := make([][]float64, len(variants))
	for rep := 0; rep < reps; rep++ {
		for i := range variants {
			db := dbs[i]
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := db.Query(ctx, queries[j%len(queries)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns[i] = append(ns[i], float64(r.T.Nanoseconds())/float64(r.N))
		}
	}
	for i := range variants {
		out[i].NsPerOp = medianOf(append([]float64(nil), ns[i]...))
		ratios := make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			ratios[rep] = ns[i][rep] / ns[0][rep]
		}
		out[i].VsFrozen = medianOf(ratios)
		if graphs[i].IsLive() {
			graphs[i].Quiesce()
		}
		fmt.Fprintf(os.Stderr, "%-24s live   %12.0f ns/op  (delta %5d edges, x%.2f vs frozen)\n",
			variants[i].name, out[i].NsPerOp, out[i].DeltaEdges, out[i].VsFrozen)
	}

	fig11, err := liveFig11(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	churn, err := liveChurn(ctx, nodes, edges, seed, queries)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, fig11, churn, nil
}

// liveFig11 cold-runs the Figure 11 CONNECT workloads (the obs-bench
// subset) through the facade on the frozen graph and on a live store
// with an empty delta — the same search kernels over the overlay's
// fast path, pinning the acceptance claim that an empty-delta epoch
// view stays within a few percent of the frozen CSR.
func liveFig11(ctx context.Context) ([]liveFig11Entry, error) {
	subset := map[string]bool{
		"Fig11Line/m=10_sL=3": true,
		"Fig11Comb/nA=4_sL=3": true,
		"Fig11Star/m=5_sL=4":  true,
	}
	var out []liveFig11Entry
	for _, wl := range fig11Workloads(false) {
		if !subset[wl.name] {
			continue
		}
		load := func() (*ctpquery.Graph, error) {
			var buf bytes.Buffer
			if err := graph.WriteTriples(&buf, wl.w.Graph); err != nil {
				return nil, err
			}
			return ctpquery.LoadTriples(&buf)
		}
		members := make([]string, wl.w.M())
		for i, set := range wl.w.Seeds {
			members[i] = wl.w.Graph.NodeLabel(set[0])
		}
		query := fmt.Sprintf("SELECT ?w WHERE { CONNECT %s AS ?w . }", strings.Join(members, " "))

		open := func(live bool) (*ctpquery.DB, int, error) {
			g, err := load()
			if err != nil {
				return nil, 0, err
			}
			if live {
				g = g.LiveWithConfig(ctpquery.LiveConfig{CompactThreshold: -1})
			}
			db, err := ctpquery.Open(g, nil)
			if err != nil {
				return nil, 0, err
			}
			res, err := db.Query(ctx, query)
			if err != nil {
				return nil, 0, err
			}
			return db, res.Len(), nil
		}
		frozenDB, rows, err := open(false)
		if err != nil {
			return nil, fmt.Errorf("live fig11 %s frozen: %w", wl.name, err)
		}
		liveDB, liveRows, err := open(true)
		if err != nil {
			return nil, fmt.Errorf("live fig11 %s live: %w", wl.name, err)
		}
		if liveRows != rows {
			return nil, fmt.Errorf("live fig11 %s: empty-delta live view returned %d rows, frozen %d", wl.name, liveRows, rows)
		}

		// Paired reps, frozen and live back to back, median of per-rep
		// ratios — same drift-cancelling estimator as the main sweep.
		const reps = 5
		bench := func(db *ctpquery.DB) float64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(ctx, query); err != nil {
						b.Fatal(err)
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		frozenNs := make([]float64, reps)
		liveNs := make([]float64, reps)
		ratios := make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			frozenNs[rep] = bench(frozenDB)
			liveNs[rep] = bench(liveDB)
			ratios[rep] = liveNs[rep] / frozenNs[rep]
		}
		e := liveFig11Entry{
			Workload:      wl.name,
			Rows:          rows,
			FrozenNsPerOp: medianOf(frozenNs),
			LiveNsPerOp:   medianOf(liveNs),
			VsFrozen:      medianOf(ratios),
		}
		out = append(out, e)
		fmt.Fprintf(os.Stderr, "%-24s live   %12.0f ns/op frozen %12.0f ns/op live-empty (x%.2f)\n",
			wl.name, e.FrozenNsPerOp, e.LiveNsPerOp, e.VsFrozen)
	}
	return out, nil
}

// liveChurn runs one mutating writer and one querying reader flat out
// against a live store whose compaction threshold guarantees background
// compactions land repeatedly during the run.
func liveChurn(ctx context.Context, nodes, edges int, seed int64, queries []string) (*liveChurnEntry, error) {
	labels := []string{"knows", "cites", "funds", "worksFor"}
	g := ctpquery.RandomGraph(nodes, edges, labels, seed).
		LiveWithConfig(ctpquery.LiveConfig{CompactThreshold: 2048})
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		return nil, err
	}

	const d = 1500 * time.Millisecond
	var (
		stop     atomic.Bool
		mutOps   int64
		queryOps int64
		wg       sync.WaitGroup
		writeErr error
		readErr  error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 13))
		var added []ctpquery.Triple
		for !stop.Load() {
			var b ctpquery.Batch
			for i := 0; i < 64; i++ {
				t := ctpquery.Triple{
					Source: fmt.Sprintf("n%d", 1+rng.Intn(nodes)),
					Label:  labels[rng.Intn(len(labels))],
					Target: fmt.Sprintf("n%d", 1+rng.Intn(nodes)),
				}
				// Mostly adds, some deletes of edges this writer added, so
				// the delta both grows and shrinks under compaction.
				if len(added) > 0 && rng.Float64() < 0.25 {
					j := rng.Intn(len(added))
					b.DelEdges = append(b.DelEdges, added[j])
					added[j] = added[len(added)-1]
					added = added[:len(added)-1]
				} else {
					b.AddEdges = append(b.AddEdges, t)
					added = append(added, t)
				}
			}
			res, err := g.Mutate(b)
			if err != nil {
				writeErr = err
				return
			}
			atomic.AddInt64(&mutOps, int64(res.EdgesAdded+res.EdgesDeleted))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := db.Query(ctx, queries[i%len(queries)]); err != nil {
				readErr = err
				return
			}
			atomic.AddInt64(&queryOps, 1)
		}
	}()
	start := time.Now()
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	g.Quiesce()
	if writeErr != nil {
		return nil, fmt.Errorf("live churn writer: %w", writeErr)
	}
	if readErr != nil {
		return nil, fmt.Errorf("live churn reader: %w", readErr)
	}

	st, ok := g.StoreStats()
	if !ok {
		return nil, fmt.Errorf("live churn: no store stats")
	}
	e := &liveChurnEntry{
		DurationS:       elapsed,
		MutateOpsPerSec: float64(mutOps) / elapsed,
		QueriesPerSec:   float64(queryOps) / elapsed,
		FinalEpoch:      st.Epoch,
		Compactions:     st.Compactions,
		CompactAborts:   st.CompactAborts,
		DeltaEdgesAfter: st.DeltaEdges,
	}
	if e.Compactions == 0 {
		return nil, fmt.Errorf("live churn: no background compaction landed (epoch %d, %d pending ops)",
			st.Epoch, st.PendingOps)
	}
	fmt.Fprintf(os.Stderr, "%-24s churn  %10.0f mut-ops/s %8.0f queries/s  (epoch %d, %d compactions)\n",
		"live-churn", e.MutateOpsPerSec, e.QueriesPerSec, e.FinalEpoch, e.Compactions)
	return e, nil
}
