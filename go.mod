module ctpquery

go 1.21
