package ctpquery

import "time"

// QueryShape is a structural summary of a parsed query — how many
// CONNECT clauses it has, how many members and predicate conditions
// each carries, and which filters bound its search — exposed for
// serving-side cost estimation (internal/admission). The shape carries
// no label or property values: two queries connecting different nodes
// through the same clause structure share a shape, which is exactly the
// granularity the admission estimator learns observed costs at.
type QueryShape struct {
	// BGPPatterns counts the edge patterns across every BGP of the body.
	BGPPatterns int
	// CTPs describes each CONNECT clause, in query order.
	CTPs []CTPShape
	// Limit is the query-level LIMIT solution modifier (0 = none).
	Limit int
}

// CTPShape summarizes one CONNECT clause.
type CTPShape struct {
	// Members is the number of member predicates (the paper's m).
	Members int
	// Universal counts members with no conditions and no BGP binding:
	// their seed set is the whole node set, the most expensive kind.
	Universal int
	// Conditions is the total predicate-condition count across members
	// (a constant member contributes its implicit label equality).
	Conditions int
	// MaxEdges is the MAX filter (0 = unbounded tree size).
	MaxEdges int
	// Labels is the size of the LABEL allow-list (0 = all edge labels).
	Labels int
	// Uni reports the UNI directionality filter.
	Uni bool
	// Limit is the per-CTP LIMIT filter (0 = enumerate everything).
	Limit int
	// TopK is the SCORE ... TOP k filter (0 = no top-k trimming).
	TopK int
	// Timeout is the TIMEOUT filter (0 = no per-clause bound).
	Timeout time.Duration
}

// Shape returns the query's structural summary; see QueryShape.
func (q *Query) Shape() QueryShape {
	s := QueryShape{Limit: q.q.Limit}
	bgpVars := map[string]bool{}
	for _, b := range q.q.BGPs {
		s.BGPPatterns += len(b.Patterns)
		for _, v := range b.Vars() {
			bgpVars[v] = true
		}
	}
	for _, c := range q.q.CTPs {
		cs := CTPShape{
			Members:  len(c.Members),
			MaxEdges: c.Filters.MaxEdges,
			Labels:   len(c.Filters.Labels),
			Uni:      c.Filters.Uni,
			Limit:    c.Filters.Limit,
			TopK:     c.Filters.TopK,
			Timeout:  c.Filters.Timeout,
		}
		for _, m := range c.Members {
			cs.Conditions += len(m.Conds)
			if len(m.Conds) == 0 && !bgpVars[m.Var] {
				cs.Universal++
			}
		}
		s.CTPs = append(s.CTPs, cs)
	}
	return s
}
