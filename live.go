package ctpquery

import (
	"fmt"
	"io"

	"ctpquery/internal/graph"
)

// Live graphs. A Graph loaded or built through this package is frozen;
// calling Live upgrades it to a mutable store: an immutable CSR base plus
// a delta overlay of added nodes/edges/types and deleted edges, published
// as a sequence of immutable epoch views. Readers — every query run
// through a DB — pin the current view at entry and never observe a
// half-applied batch; Mutate applies one atomic batch and bumps the
// epoch. Past a configurable delta size the store compacts in the
// background, folding the delta into a fresh CSR base without changing
// the epoch, the fingerprint, or any pinned reader's world.

// Batch is one atomic group of mutations; see the field docs for the
// application order and the label-based node identity rules.
type Batch = graph.Batch

// Triple names an edge by node labels, as in the triples text format.
type Triple = graph.Triple

// NodeAdd declares a node by label with optional types (an upsert when
// the label already names exactly one node).
type NodeAdd = graph.NodeAdd

// TypeAdd attaches a type to an existing node.
type TypeAdd = graph.TypeAdd

// MutateResult reports what one Mutate applied and the epoch it created.
type MutateResult = graph.MutateResult

// StoreStats is a point-in-time snapshot of a live graph's store.
type StoreStats = graph.StoreStats

// CompactionInfo describes one compaction attempt, delivered to the
// observer installed with OnCompaction.
type CompactionInfo = graph.CompactionInfo

// LiveConfig configures Live.
type LiveConfig struct {
	// CompactThreshold is the number of delta operations that triggers a
	// background compaction; 0 selects the default, negative disables
	// automatic compaction (CompactNow still works).
	CompactThreshold int
}

// Live returns a mutable version of g with the default configuration.
// The receiver is unchanged (and shares no mutable state with the
// returned graph); queries against the live graph pin the epoch current
// when they start.
func (g *Graph) Live() *Graph { return g.LiveWithConfig(LiveConfig{}) }

// LiveWithConfig is Live with an explicit configuration.
func (g *Graph) LiveWithConfig(cfg LiveConfig) *Graph {
	return &Graph{store: graph.NewStore(g.view(), graph.StoreOptions{
		CompactThreshold: cfg.CompactThreshold,
	})}
}

// IsLive reports whether g accepts mutations.
func (g *Graph) IsLive() bool { return g.store != nil }

// Epoch returns the graph's epoch: 0 for a frozen graph or a fresh live
// graph, incremented by every applied batch. A Snapshot keeps the epoch
// it pinned.
func (g *Graph) Epoch() uint64 { return g.view().Epoch() }

// Mutate applies one batch atomically and publishes the next epoch. It
// fails on a frozen graph, and on validation errors (an ambiguous node
// label, a type for an unknown node) — in which case nothing is applied.
// In-flight queries are unaffected either way: they hold the view they
// pinned at entry.
func (g *Graph) Mutate(b Batch) (MutateResult, error) {
	if g.store == nil {
		return MutateResult{}, fmt.Errorf("ctpquery: Mutate on a frozen graph (call Live first)")
	}
	return g.store.Mutate(b)
}

// Snapshot pins the current epoch: the returned frozen Graph serves
// exactly this epoch's content forever, regardless of later mutations or
// compactions. On a frozen graph it returns the receiver.
func (g *Graph) Snapshot() *Graph {
	if g.store == nil {
		return g
	}
	return &Graph{g: g.store.Snapshot()}
}

// StoreStats returns the live store's counters; ok is false on a frozen
// graph.
func (g *Graph) StoreStats() (StoreStats, bool) {
	if g.store == nil {
		return StoreStats{}, false
	}
	return g.store.Stats(), true
}

// CompactNow synchronously folds the delta into a fresh CSR base,
// whatever its size. It fails on a frozen graph or when a background
// compaction is already running.
func (g *Graph) CompactNow() error {
	if g.store == nil {
		return fmt.Errorf("ctpquery: CompactNow on a frozen graph")
	}
	return g.store.CompactNow()
}

// Quiesce blocks until any in-flight background compaction finishes. A
// no-op on frozen graphs.
func (g *Graph) Quiesce() {
	if g.store != nil {
		g.store.Quiesce()
	}
}

// OnCompaction installs fn, called after every compaction attempt
// (including aborted ones) from the compaction goroutine. Servers hang
// their metrics and tracing here.
func (g *Graph) OnCompaction(fn func(CompactionInfo)) {
	if g.store != nil {
		g.store.SetCompactionObserver(fn)
	}
}

// view returns the graph to read: the current epoch view for a live
// graph, the frozen graph otherwise. Callers that must observe a single
// consistent epoch across several reads (every query does) call it once
// and hold the result.
func (g *Graph) view() *graph.Graph {
	if g.store != nil {
		return g.store.View()
	}
	return g.g
}

// ReadMutations parses the mutation stream format emitted by graphgen
// -mutations (one op per line — "+n label types...", "+t node type",
// "+e src label dst", "-e src label dst" — blank lines separating
// batches) into batches for Graph.Mutate.
func ReadMutations(r io.Reader) ([]Batch, error) { return graph.ReadMutations(r) }

// WriteMutations writes batches in the mutation stream format read by
// ReadMutations.
func WriteMutations(w io.Writer, batches []Batch) error { return graph.WriteMutations(w, batches) }
