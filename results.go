package ctpquery

import (
	"math"
	"strconv"
	"strings"
	"time"

	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/graph"
	"ctpquery/internal/score"
	"ctpquery/internal/tree"
)

// Results is the outcome of executing a query: a table of rows, one
// column per projected head variable. Columns bound by a CONNECT clause's
// AS variable hold connecting trees; every other column holds a graph
// node. Results are immutable and safe for concurrent readers.
type Results struct {
	g   *Graph
	q   *eql.Query
	res *engine.Result

	treeCols map[string]bool

	// traceID is the trace the run executed under ("" without a tracer);
	// surfaced through SearchStats so cached results keep pointing at the
	// populating run's trace in the flight recorder.
	traceID string
}

func newResults(g *Graph, q *eql.Query, res *engine.Result) *Results {
	tc := make(map[string]bool, len(q.CTPs))
	for _, tv := range q.TreeVars() {
		tc[tv] = true
	}
	return &Results{g: g, q: q, res: res, treeCols: tc}
}

// Graph returns the graph view this run executed against — on a live
// graph, the epoch pinned when the query started. Render rows and trees
// through it (not through the DB's possibly-advanced live graph) for a
// consistent picture.
func (r *Results) Graph() *Graph { return r.g }

// Epoch returns the epoch the run was pinned to (0 for frozen graphs).
func (r *Results) Epoch() uint64 { return r.g.Epoch() }

// Len returns the number of result rows.
func (r *Results) Len() int { return r.res.Table.NumRows() }

// Columns returns the column (head variable) names, in projection order.
func (r *Results) Columns() []string { return append([]string(nil), r.res.Table.Cols()...) }

// IsTreeColumn reports whether the named column holds connecting trees
// (it is the AS variable of a CONNECT clause) rather than nodes.
func (r *Results) IsTreeColumn(col string) bool { return r.treeCols[col] }

// Row returns the i-th result row.
func (r *Results) Row(i int) Row { return Row{r: r, i: i} }

// Each calls fn on every row, in order, stopping early if fn returns
// false.
func (r *Results) Each(fn func(Row) bool) {
	for i := 0; i < r.Len(); i++ {
		if !fn(Row{r: r, i: i}) {
			return
		}
	}
}

// ApproxSize estimates the heap bytes this result set retains: the row
// table, the column names, and the connecting trees (node/edge slices
// plus fixed per-object overhead). Provenance sub-trees shared between
// results are charged once per tree they appear under, and interned graph
// data is not charged at all, so the number is an estimate, not an exact
// accounting — the query-result cache uses it to budget entries.
func (r *Results) ApproxSize() int64 {
	const (
		resultsOverhead = 256 // Results + engine.Result + slice headers
		rowOverhead     = 24  // []int32 header per row
		treeOverhead    = 112 // tree.Tree struct + slice headers
	)
	size := int64(resultsOverhead)
	cols := r.res.Table.Cols()
	for _, c := range cols {
		size += int64(len(c)) + 16
	}
	size += int64(r.res.Table.NumRows()) * (rowOverhead + 4*int64(len(cols)))
	for _, t := range r.res.Trees {
		size += treeOverhead + 4*int64(len(t.Edges)) + 4*int64(len(t.Nodes))
	}
	return size
}

// MergeKey returns a canonical identity-and-order key for row i — the
// scatter-gather merge contract of internal/cluster. Two shards holding
// the same graph (replicas, or partitions cut from one shared node/edge
// dictionary) compute the identical key for the identical logical row,
// so a coordinator can dedup replica overlap and order a gathered union
// deterministically by plain string comparison. Per tree column the key
// embeds the PR 4 collector's canonical order — score descending, then
// tree size, then the sorted edge-set key (node identity for 0-edge
// trees) — each component encoded so lexicographic key order equals the
// collector's comparator; node columns append their bound node IDs.
// Every component is hex-encoded ASCII: the key must survive a JSON
// round-trip byte-for-byte (serve ships it as row_keys), and
// encoding/json silently rewrites invalid UTF-8 to U+FFFD, which would
// both mangle the order and let distinct keys collide. Keys are only
// comparable between results of the same query over the same graph
// build.
func (r *Results) MergeKey(i int) string {
	var b strings.Builder
	row := r.res.Table.Row(i)
	for ci, col := range r.res.Table.Cols() {
		if ci > 0 {
			b.WriteByte('|')
		}
		if !r.treeCols[col] {
			b.WriteByte('n')
			appendHex(&b, uint64(uint32(row[ci])), 8)
			continue
		}
		t := r.res.Tree(row[ci])
		if t == nil {
			b.WriteString("t-")
			continue
		}
		var sc float64
		if f := r.scoreFor(col); f != nil {
			sc = f(r.g.view(), t)
		}
		appendScoreDesc(&b, sc)
		b.WriteByte(':')
		appendHex(&b, uint64(uint32(t.Size())), 8)
		b.WriteByte(':')
		if t.Size() == 0 {
			b.WriteByte('n')
			appendHexBytes(&b, tree.EdgeSetKey([]graph.EdgeID{graph.EdgeID(t.Root)}))
		} else {
			// Deliberately no root component: the search dedups results by
			// edge-set signature, so the root of a multi-edge tree is a
			// discovery artifact (two replicas — or two runs — may represent
			// the same logical result with different roots). Keying on the
			// edge set alone makes a cross-replica merge collapse those
			// representations instead of double-counting them.
			appendHexBytes(&b, tree.EdgeSetKey(t.Edges))
		}
	}
	return b.String()
}

// scoreFor resolves the score function ranking the CTP bound to col
// (nil when that CONNECT names no SCORE).
func (r *Results) scoreFor(col string) func(*graph.Graph, *tree.Tree) float64 {
	for _, c := range r.q.CTPs {
		if c.TreeVar == col && c.Filters.Score != "" {
			if f, ok := score.Get(c.Filters.Score); ok {
				return f
			}
		}
	}
	return nil
}

// appendHex writes v zero-padded to width hex digits, so lexicographic
// order over the digits equals numeric order.
func appendHex(b *strings.Builder, v uint64, width int) {
	s := strconv.FormatUint(v, 16)
	for pad := width - len(s); pad > 0; pad-- {
		b.WriteByte('0')
	}
	b.WriteString(s)
}

// appendHexBytes hex-encodes raw key bytes (tree.EdgeSetKey's
// little-endian edge IDs). Hex expands each byte to a fixed-width digit
// pair, so lexicographic order over the encoding equals lexicographic
// order over the raw bytes — the collector's tie-break comparator —
// while keeping the key valid ASCII for a JSON round-trip.
func appendHexBytes(b *strings.Builder, key string) {
	const digits = "0123456789abcdef"
	for i := 0; i < len(key); i++ {
		b.WriteByte(digits[key[i]>>4])
		b.WriteByte(digits[key[i]&0xf])
	}
}

// appendScoreDesc writes a float64 encoded so lexicographic order over
// the 16 hex digits equals DESCENDING numeric order — the collector
// sorts score-high-first. The standard order-embedding (flip the sign
// bit of positives, complement negatives) makes the bits ascend with
// the value; complementing once more reverses it.
func appendScoreDesc(b *strings.Builder, s float64) {
	bits := math.Float64bits(s)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	appendHex(b, ^bits, 16)
}

// TimedOut reports whether any CTP search hit its time bound (a TIMEOUT
// filter, Options.DefaultTimeout, or a context deadline); the rows are
// then a — still valid — subset of the full answer.
func (r *Results) TimedOut() bool { return r.res.TimedOut() }

// Truncated reports whether any CTP search stopped early for a reason
// other than time: a LIMIT filter or a StreamFunc returning false.
func (r *Results) Truncated() bool { return r.res.Truncated() }

// Timings returns the per-phase evaluation times: BGP matching, CTP
// connection search, and final join + projection.
func (r *Results) Timings() (bgp, ctp, join time.Duration) {
	return r.res.BGPTime, r.res.CTPTime, r.res.JoinTime
}

// SearchStats is the aggregated search-effort report over every CONNECT
// clause of a query: how many provenance trees the CTP kernels built, how
// hard the queues and the memory allocator were pushed. Servers surface it
// per query so hot-path regressions are observable in production, not
// only under the benchmarks.
type SearchStats struct {
	// TreesGenerated counts every provenance tree constructed, including
	// ones discarded as duplicates.
	TreesGenerated int
	// TreesKept counts the provenances retained (the paper's Figure 11
	// metric).
	TreesKept int
	// TreesRecycled counts rejected candidates whose buffers went back to
	// the pool instead of the garbage collector.
	TreesRecycled int
	// PeakTrees is the largest number of live provenances at any instant,
	// summed over CONNECT clauses.
	PeakTrees int
	// PeakQueueLen is the largest grow-queue length over all clauses.
	PeakQueueLen int
	// Allocations is the total heap allocation count of the searches,
	// sampled only when Options.TrackAllocs is set (0 otherwise).
	Allocations uint64

	// Parallelism is the largest worker count any CONNECT search ran with
	// (0 when every search took the sequential kernel).
	Parallelism int
	// Workers aggregates per-worker effort across the query's CONNECT
	// searches, index-aligned (worker 0 of every search sums into entry
	// 0). Empty for sequential queries.
	Workers []WorkerSearchStats

	// BGPNS, CTPNS, and JoinNS are the per-stage evaluation times in
	// nanoseconds — the Timings breakdown embedded here so one struct
	// carries a query's full effort-and-latency report.
	BGPNS, CTPNS, JoinNS int64
	// TraceID identifies the run's trace in the executing process's
	// flight recorder (GET /debug/traces?id=); empty when the run had no
	// tracer. On a cache hit it is the trace of the run that populated
	// the entry — the request that actually did the work.
	TraceID string
}

// WorkerSearchStats is one parallel-search worker's share of a query's
// effort; see ctpquery's DESIGN.md §6 for the runtime it describes.
type WorkerSearchStats struct {
	// Ops counts grow opportunities and exchange tasks processed.
	Ops int
	// Kept counts provenance trees this worker retained.
	Kept int
	// Shipped counts tasks routed to other workers' shards.
	Shipped int
	// Stolen counts ops taken from other workers' queues while idle.
	Stolen int
	// BusyNS is the worker's thread CPU time (0 where unsupported); the
	// max over workers approximates the search's critical path.
	BusyNS int64
	// WallNS is the worker's wall time from spawn to drain — what the
	// tracer renders as the worker's span.
	WallNS int64
}

// CostUnits collapses the report into one scalar effort number — the
// feedback signal the admission estimator (internal/admission) learns
// observed per-shape costs from. Units are provenance-tree
// constructions, the paper's effort metric; a query that searched
// nothing still reports 1 so downstream ratios stay finite.
func (s SearchStats) CostUnits() float64 {
	u := float64(s.TreesGenerated)
	if u < 1 {
		u = 1
	}
	return u
}

// SearchStats aggregates the per-CONNECT search statistics of the query.
func (r *Results) SearchStats() SearchStats {
	var out SearchStats
	for _, st := range r.res.CTPStats {
		if st == nil {
			continue
		}
		out.TreesGenerated += st.Created
		out.TreesKept += st.Kept()
		out.TreesRecycled += st.Recycled
		out.PeakTrees += st.PeakTrees
		if st.PeakQueueLen > out.PeakQueueLen {
			out.PeakQueueLen = st.PeakQueueLen
		}
		out.Allocations += st.Allocations
		if st.Parallelism > out.Parallelism {
			out.Parallelism = st.Parallelism
		}
		for i, ws := range st.Workers {
			if i >= len(out.Workers) {
				out.Workers = append(out.Workers, WorkerSearchStats{})
			}
			out.Workers[i].Ops += ws.Ops
			out.Workers[i].Kept += ws.Kept
			out.Workers[i].Shipped += ws.Shipped
			out.Workers[i].Stolen += ws.Stolen
			out.Workers[i].BusyNS += ws.BusyNS
			out.Workers[i].WallNS += ws.WallNS
		}
	}
	out.BGPNS = int64(r.res.BGPTime)
	out.CTPNS = int64(r.res.CTPTime)
	out.JoinNS = int64(r.res.JoinTime)
	out.TraceID = r.traceID
	return out
}

// Row is one result row. The zero Row is invalid; obtain rows from
// Results.Row or Results.Each.
type Row struct {
	r *Results
	i int
}

// Node returns the node bound to col; ok is false for unknown columns and
// for tree columns.
func (w Row) Node(col string) (n NodeID, ok bool) {
	c := w.r.res.Table.Column(col)
	if c < 0 || w.r.treeCols[col] {
		return 0, false
	}
	return NodeID(w.r.res.Table.Row(w.i)[c]), true
}

// Label returns the label of the node bound to col ("" for unknown or
// tree columns and for unlabeled nodes).
func (w Row) Label(col string) string {
	n, ok := w.Node(col)
	if !ok {
		return ""
	}
	return w.r.g.NodeLabel(n)
}

// Tree returns the connecting tree bound to col, or nil when col is not a
// tree column.
func (w Row) Tree(col string) *Tree {
	c := w.r.res.Table.Column(col)
	if c < 0 || !w.r.treeCols[col] {
		return nil
	}
	t := w.r.res.Tree(w.r.res.Table.Row(w.i)[c])
	if t == nil {
		return nil
	}
	return &Tree{g: w.r.g, t: t}
}

// String renders the row with node labels resolved, e.g.
// "?x=Alice ?w={2 edges}".
func (w Row) String() string { return w.r.res.FormatRow(w.r.g.view(), w.r.q, w.i) }

// Tree is one connecting tree: a set of graph edges forming a tree that
// joins one node from each CONNECT member's seed set (Definition 2.5).
// Trees are immutable.
type Tree struct {
	g *Graph
	t *tree.Tree
}

// Size returns the number of edges; a single-node tree (a node matching
// every member at once) has size 0.
func (t *Tree) Size() int { return t.t.Size() }

// Root returns the tree's root node.
func (t *Tree) Root() NodeID { return NodeID(t.t.Root) }

// Nodes returns the tree's nodes, sorted by ID.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, len(t.t.Nodes))
	for i, n := range t.t.Nodes {
		out[i] = NodeID(n)
	}
	return out
}

// TreeEdge is one directed, labeled edge of a connecting tree, with the
// endpoint labels resolved.
type TreeEdge struct {
	Src      NodeID
	Dst      NodeID
	SrcLabel string
	Label    string
	DstLabel string
}

// Edges returns the tree's edges, sorted by edge ID, with labels
// resolved.
func (t *Tree) Edges() []TreeEdge {
	out := make([]TreeEdge, len(t.t.Edges))
	for i, e := range t.t.Edges {
		ed := t.g.view().Edge(e)
		out[i] = TreeEdge{
			Src:      NodeID(ed.Source),
			Dst:      NodeID(ed.Target),
			SrcLabel: t.g.label(ed.Source),
			Label:    t.g.view().EdgeLabel(e),
			DstLabel: t.g.label(ed.Target),
		}
	}
	return out
}

// Format renders the tree one edge per line, e.g.
//
//	Carole -[founded]-> OrgC
//	Doug -[investsIn]-> OrgC
//
// Single-node trees render as the node label.
func (t *Tree) Format() string { return engine.FormatTree(t.g.view(), t.t) }
