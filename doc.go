// Package ctpquery is a Go reproduction of "Integrating connection search
// in graph queries" (Anadiotis, Manolescu, Mohanty; ICDE 2023): an
// Extended Query Language that joins conjunctive graph patterns with
// Connecting Tree Patterns — "how are these m groups of nodes connected?"
// — and the family of CTP evaluation algorithms the paper studies,
// culminating in MoLESP.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/eqlrun, cmd/ctpbench, and cmd/expdriver are the entry points,
// and examples/ holds runnable walkthroughs.
package ctpquery
