// Package ctpquery is a Go reproduction of "Integrating connection search
// in graph queries" (Anadiotis, Manolescu, Mohanty; ICDE 2023): an
// Extended Query Language that joins conjunctive graph patterns with
// Connecting Tree Patterns — "how are these m groups of nodes connected?"
// — and the family of CTP evaluation algorithms the paper studies,
// culminating in MoLESP.
//
// This package is the public facade: build or load a Graph, Open a DB
// over it, and run EQL text through Query/Run (or QueryStream, to watch
// connecting trees surface as the search finds them). The algorithm
// implementations live under internal/ — see DESIGN.md for the module
// map and README.md for the EQL language reference.
//
// Entry points: cmd/ctpserve serves concurrent EQL queries over HTTP,
// cmd/eqlrun executes a single query from the command line, cmd/graphgen
// generates graphs, and cmd/ctpbench and cmd/expdriver drive the paper's
// experiments; examples/ holds runnable walkthroughs, starting with
// examples/quickstart.
package ctpquery
