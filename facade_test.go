// End-to-end tests of the public ctpquery facade: every query here runs
// through the exported API only (parse -> execute -> iterate), the way an
// importing application would.
package ctpquery_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ctpquery"
)

// figure1Query is the paper's running example: American entrepreneurs and
// their connections to France.
const figure1Query = `
SELECT ?x ?w WHERE {
  ?x citizenOf USA .
  FILTER type(?x) = entrepreneur .
  CONNECT ?x France AS ?w MAX 3 .
}`

// rowStrings collects the formatted rows, sorted, for golden comparisons.
func rowStrings(res *ctpquery.Results) []string {
	var out []string
	res.Each(func(r ctpquery.Row) bool {
		out = append(out, r.String())
		return true
	})
	sort.Strings(out)
	return out
}

func mustOpenSample(t *testing.T, opts *ctpquery.Options) *ctpquery.DB {
	t.Helper()
	db, err := ctpquery.Open(ctpquery.SampleGraph(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFigure1Golden(t *testing.T) {
	db := mustOpenSample(t, nil)
	res, err := db.Query(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"?x=Bob ?w={2 edges}",
		"?x=Bob ?w={3 edges}",
		"?x=Carole ?w={2 edges}",
		"?x=Carole ?w={3 edges}",
		"?x=Carole ?w={3 edges}",
	}
	if got := rowStrings(res); !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %q, want %q", got, want)
	}
	if res.TimedOut() || res.Truncated() {
		t.Errorf("unexpected flags: timedOut=%v truncated=%v", res.TimedOut(), res.Truncated())
	}
	// The smallest connection from Carole is founding the France-located
	// OrgA.
	var carole *ctpquery.Tree
	res.Each(func(r ctpquery.Row) bool {
		if r.Label("x") == "Carole" && r.Tree("w").Size() == 2 {
			carole = r.Tree("w")
		}
		return true
	})
	if carole == nil {
		t.Fatal("no 2-edge Carole connection found")
	}
	wantTree := "OrgA -[locatedIn]-> France\nCarole -[founded]-> OrgA"
	if got := carole.Format(); got != wantTree {
		t.Errorf("Carole tree:\n%s\nwant:\n%s", got, wantTree)
	}
}

// TestAlgorithmsAgree runs the same 2-seed query under every CTP
// algorithm; completeness for m <= 3 (Property 9) means all eight must
// return the same row set.
func TestAlgorithmsAgree(t *testing.T) {
	query := `SELECT ?w WHERE { CONNECT Bob Elon AS ?w MAX 4 . }`
	var want []string
	for _, algo := range ctpquery.Algorithms() {
		db := mustOpenSample(t, &ctpquery.Options{Algorithm: algo})
		res, err := db.Query(context.Background(), query)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var trees []string
		res.Each(func(r ctpquery.Row) bool {
			edges := []string{}
			for _, e := range r.Tree("w").Edges() {
				edges = append(edges, e.SrcLabel+"-"+e.Label+"->"+e.DstLabel)
			}
			sort.Strings(edges)
			trees = append(trees, strings.Join(edges, ";"))
			return true
		})
		sort.Strings(trees)
		if want == nil {
			want = trees
			if len(want) == 0 {
				t.Fatal("no results for the reference algorithm")
			}
			continue
		}
		if !reflect.DeepEqual(trees, want) {
			t.Errorf("%s: trees = %q, want %q", algo, trees, want)
		}
	}
}

func TestGraphBuilderRoundTrip(t *testing.T) {
	b := ctpquery.NewGraphBuilder()
	ada := b.AddNode("Ada")
	lab := b.AddNode("Lab")
	eve := b.AddNode("Eve")
	b.AddType(ada, "person")
	b.AddType(eve, "person")
	b.AddEdge(ada, "memberOf", lab)
	b.AddEdge(eve, "memberOf", lab)
	g := b.Build()

	var buf bytes.Buffer
	if err := g.WriteTriples(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ctpquery.LoadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}

	var snap bytes.Buffer
	if err := g.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	g3, err := ctpquery.LoadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}

	for _, gg := range []*ctpquery.Graph{g2, g3} {
		db, err := ctpquery.Open(gg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(context.Background(),
			`SELECT ?w WHERE { CONNECT Ada Eve AS ?w MAX 2 . }`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("want the single Ada-Lab-Eve connection, got %d rows", res.Len())
		}
		if got := res.Row(0).Tree("w").Size(); got != 2 {
			t.Errorf("tree size = %d, want 2", got)
		}
	}
}

func TestQueryLimit(t *testing.T) {
	db := mustOpenSample(t, nil)
	res, err := db.Query(context.Background(),
		`SELECT ?x ?w WHERE { ?x citizenOf USA . CONNECT ?x France AS ?w MAX 3 . } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("LIMIT 2: got %d rows", res.Len())
	}
}

func TestParseErrors(t *testing.T) {
	db := mustOpenSample(t, nil)
	for _, bad := range []string{
		"",
		"SELECT ?x WHERE { }",
		"SELECT ?x WHERE { CONNECT a b . }", // no AS
		"SELECT ?zzz WHERE { ?x citizenOf USA . }",      // head not in body
		"SELECT ?w WHERE { CONNECT a b AS ?w TOP 3 . }", // TOP without SCORE
	} {
		if _, err := db.Query(context.Background(), bad); err == nil {
			t.Errorf("query %q: want error", bad)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := ctpquery.Open(ctpquery.SampleGraph(), &ctpquery.Options{Algorithm: "Dijkstra"}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	// Case and dash variations resolve.
	for _, name := range []string{"molesp", "bft-m", "BFTM", "bftam"} {
		if _, err := ctpquery.Open(ctpquery.SampleGraph(), &ctpquery.Options{Algorithm: name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestContextDeadline gives a heavy enumeration a tiny budget: the run
// must come back quickly with the partial results flagged TimedOut, the
// paper's TIMEOUT semantics.
func TestContextDeadline(t *testing.T) {
	g := ctpquery.RandomGraph(4000, 16000, []string{"a", "b", "c"}, 7)
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := db.Query(ctx,
		`SELECT ?w WHERE { CONNECT n1 n2 n3 n4 n5 n6 AS ?w . }`)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline ignored: took %v", elapsed)
	}
	if !res.TimedOut() {
		t.Error("want TimedOut after the deadline expired")
	}
}

// TestExpiredDeadline: a deadline that has already passed is still not an
// error — the bounded searches return immediately and the (empty) partial
// result is flagged TimedOut.
func TestExpiredDeadline(t *testing.T) {
	db := mustOpenSample(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := db.Query(ctx, figure1Query)
	if err != nil {
		t.Fatalf("expired deadline: %v, want partial results", err)
	}
	if !res.TimedOut() {
		t.Error("want TimedOut for an expired deadline")
	}
}

func TestContextCancel(t *testing.T) {
	db := mustOpenSample(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(ctx, figure1Query); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStream(t *testing.T) {
	db := mustOpenSample(t, nil)
	var streamed atomic.Int64
	res, err := db.QueryStream(context.Background(), figure1Query,
		func(ctp int, tr *ctpquery.Tree) bool {
			if ctp != 0 {
				t.Errorf("ctp index = %d, want 0", ctp)
			}
			if tr.Size() < 1 || tr.Size() > 3 {
				t.Errorf("streamed tree size %d outside MAX 3", tr.Size())
			}
			streamed.Add(1)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming sees every CTP result before the join restricts ?x to
	// American entrepreneurs, so at least the final trees must have
	// streamed.
	if n := streamed.Load(); int(n) < res.Len() {
		t.Errorf("streamed %d trees, final result has %d rows", n, res.Len())
	}

	// Returning false stops the search and flags truncation.
	var n atomic.Int64
	res, err = db.QueryStream(context.Background(), figure1Query,
		func(int, *ctpquery.Tree) bool { return n.Add(1) < 2 })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated() {
		t.Error("want Truncated after the stream callback stopped the search")
	}
}

func TestExplain(t *testing.T) {
	db := mustOpenSample(t, nil)
	q, err := ctpquery.ParseQuery(figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "MoLESP") {
		t.Errorf("plan does not mention the algorithm:\n%s", plan)
	}
	if q2, err := ctpquery.ParseQuery(q.String()); err != nil {
		t.Errorf("String() does not round-trip: %v", err)
	} else if len(q2.Variables()) != len(q.Variables()) {
		t.Errorf("round-tripped head %v, want %v", q2.Variables(), q.Variables())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	query := `
SELECT ?w1 ?w2 WHERE {
  CONNECT Bob Carole AS ?w1 MAX 3 .
  CONNECT Alice Elon AS ?w2 MAX 3 .
}`
	seq := mustOpenSample(t, nil)
	par := mustOpenSample(t, &ctpquery.Options{Parallel: true})
	rseq, err := seq.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	rpar, err := par.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStrings(rseq), rowStrings(rpar)) {
		t.Errorf("parallel rows %q != sequential rows %q", rowStrings(rpar), rowStrings(rseq))
	}
	if rseq.Len() == 0 {
		t.Error("expected results")
	}
}

func TestWithParallelismMatchesSequential(t *testing.T) {
	seq := mustOpenSample(t, nil)
	par, err := seq.With(ctpquery.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Options().Parallelism; got != 4 {
		t.Fatalf("Options.Parallelism = %d, want 4", got)
	}
	rseq, err := seq.Query(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	rpar, err := par.Query(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStrings(rseq), rowStrings(rpar)) {
		t.Errorf("WithParallelism rows %q != sequential rows %q", rowStrings(rpar), rowStrings(rseq))
	}
	st := rpar.SearchStats()
	if st.Parallelism != 4 || len(st.Workers) != 4 {
		t.Errorf("SearchStats Parallelism=%d Workers=%d, want 4/4", st.Parallelism, len(st.Workers))
	}
	if seqStats := rseq.SearchStats(); seqStats.Parallelism != 0 || len(seqStats.Workers) != 0 {
		t.Errorf("sequential SearchStats unexpectedly parallel: %+v", seqStats)
	}
}

func TestOpenQueryOptions(t *testing.T) {
	db, err := ctpquery.Open(ctpquery.SampleGraph(), &ctpquery.Options{Algorithm: "GAM"},
		ctpquery.WithAlgorithm("ESP"), ctpquery.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if o := db.Options(); o.Algorithm != "ESP" || o.Parallelism != 2 {
		t.Fatalf("QueryOptions not applied: %+v", o)
	}
}

func TestOpenGraphSniffsSnapshots(t *testing.T) {
	dir := t.TempDir()
	g := ctpquery.SampleGraph()

	// A snapshot written under an arbitrary extension must load via the
	// magic-byte sniff, not the file name.
	snapPath := dir + "/graph.ctpg"
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := ctpquery.OpenGraph(snapPath)
	if err != nil {
		t.Fatalf("sniffing snapshot: %v", err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot round-trip: %d/%d nodes, %d/%d edges",
			loaded.NumNodes(), g.NumNodes(), loaded.NumEdges(), g.NumEdges())
	}

	// Triple text without the magic still parses as triples.
	triplesPath := dir + "/graph.triples"
	tf, err := os.Create(triplesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteTriples(tf); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	loaded2, err := ctpquery.OpenGraph(triplesPath)
	if err != nil {
		t.Fatalf("triples reload: %v", err)
	}
	if loaded2.NumEdges() != g.NumEdges() {
		t.Fatalf("triples round-trip: %d edges, want %d", loaded2.NumEdges(), g.NumEdges())
	}
}
