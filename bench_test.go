// Benchmarks regenerating each table and figure of the paper's evaluation
// as testing.B targets (run with `go test -bench=. -benchmem`); each bench
// measures representative points of the corresponding experiment, while
// cmd/expdriver prints the full sweep in the paper's row format.
// DESIGN.md §4 records the expected shapes.
package ctpquery

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ctpquery/internal/baselines"
	"ctpquery/internal/bench"
	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

const benchTimeout = 2 * time.Second

// searchOnce runs one CTP search and reports provenance/result metrics.
func searchOnce(b *testing.B, w *gen.Workload, alg core.Algorithm, filters eql.Filters) {
	b.Helper()
	filters.Timeout = benchTimeout
	var kept, results int
	for i := 0; i < b.N; i++ {
		rs, st, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
			Algorithm: alg, Filters: filters})
		if err != nil {
			b.Fatal(err)
		}
		kept, results = st.Kept(), rs.Len()
	}
	b.ReportMetric(float64(kept), "provenances")
	b.ReportMetric(float64(results), "results")
}

// Figure 2: exponential result counts on chain graphs.
func BenchmarkFig2ChainExplosion(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		w := gen.Chain(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			searchOnce(b, w, core.MoLESP, eql.Filters{})
		})
	}
}

// Figure 10 (a, b, c): complete baselines on Line, Comb, Star.
func benchFig10(b *testing.B, workloads map[string]*gen.Workload) {
	for name, w := range workloads {
		for _, alg := range []core.Algorithm{core.BFT, core.BFTM, core.BFTAM, core.GAM} {
			b.Run(name+"/"+alg.String(), func(b *testing.B) {
				searchOnce(b, w, alg, eql.Filters{})
			})
		}
	}
}

func BenchmarkFig10aLineBaselines(b *testing.B) {
	benchFig10(b, map[string]*gen.Workload{
		"m=3_sL=4":  gen.Line(3, 3, gen.Alternate),
		"m=5_sL=3":  gen.Line(5, 2, gen.Alternate),
		"m=10_sL=2": gen.Line(10, 1, gen.Alternate),
	})
}

func BenchmarkFig10bCombBaselines(b *testing.B) {
	benchFig10(b, map[string]*gen.Workload{
		"nA=2_sL=3": gen.Comb(2, 2, 3, 2, gen.Alternate),
		"nA=4_sL=2": gen.Comb(4, 2, 2, 2, gen.Alternate),
	})
}

func BenchmarkFig10cStarBaselines(b *testing.B) {
	benchFig10(b, map[string]*gen.Workload{
		"m=3_sL=4": gen.Star(3, 4, gen.Alternate),
		"m=5_sL=3": gen.Star(5, 3, gen.Alternate),
	})
}

// Figure 11 (a-f): GAM pruning variants; the provenances metric is the
// (d)-(f) series, ns/op the (a)-(c) series.
func benchFig11(b *testing.B, workloads map[string]*gen.Workload) {
	for name, w := range workloads {
		for _, alg := range core.GAMFamily() {
			b.Run(name+"/"+alg.String(), func(b *testing.B) {
				searchOnce(b, w, alg, eql.Filters{})
			})
		}
	}
}

func BenchmarkFig11LineVariants(b *testing.B) {
	benchFig11(b, map[string]*gen.Workload{
		"m=3_sL=6":  gen.Line(3, 5, gen.Alternate),
		"m=10_sL=3": gen.Line(10, 2, gen.Alternate),
	})
}

func BenchmarkFig11CombVariants(b *testing.B) {
	benchFig11(b, map[string]*gen.Workload{
		"nA=4_sL=3": gen.Comb(4, 2, 3, 2, gen.Alternate),
		"nA=6_sL=2": gen.Comb(6, 2, 2, 2, gen.Alternate),
	})
}

func BenchmarkFig11StarVariants(b *testing.B) {
	benchFig11(b, map[string]*gen.Workload{
		"m=5_sL=4":  gen.Star(5, 4, gen.Alternate),
		"m=10_sL=2": gen.Star(10, 2, gen.Alternate),
	})
}

// The parallel runtime (internal/exec) across worker counts on a
// merge-heavy Figure 11 star: wall time on a single-core runner stays
// flat (workers timeslice), while the span metric in ctpbench's -json
// sweep shows the scaling; this benchmark keeps the runtime itself from
// rotting.
func BenchmarkParallelRuntimeStar(b *testing.B) {
	w := gen.Star(10, 2, gen.Alternate)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
					Algorithm:   core.MoLESP,
					Parallelism: k,
					Filters:     eql.Filters{Timeout: benchTimeout},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Figure 12: GAM and MoLESP (UNI, LIMIT 1) vs the QGSTP approximation on
// a DBPedia-like graph, by number of seed sets.
func BenchmarkFig12QGSTPComparison(b *testing.B) {
	kg := gen.DBPediaLike(1000, 1)
	rng := rand.New(rand.NewSource(2))
	wl := gen.ConnectableCTPWorkload(kg, gen.MHistogram, 40, 3, rng)
	for m := 2; m <= 6; m++ {
		queries := wl[m]
		if len(queries) == 0 {
			continue
		}
		seeds := queries[0]
		b.Run(fmt.Sprintf("m=%d/QGSTP", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baselines.QGSTP(kg.Graph, seeds)
			}
		})
		for _, alg := range []core.Algorithm{core.GAM, core.MoLESP} {
			b.Run(fmt.Sprintf("m=%d/%s", m, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.Fig12Point(kg.Graph, seeds, alg, benchTimeout)
				}
			})
		}
	}
}

// Figures 13 and 14: the CDF extended-query benchmark across systems.
func benchCDF(b *testing.B, m int) {
	for _, sl := range []int{3, 6} {
		minSL := sl
		c := gen.NewCDF(m, 8, 64, minSL)
		for _, sys := range []string{"MoLESP", "UNI-MoLESP", "Postgres", "Virtuoso-any", "Neo4j"} {
			b.Run(fmt.Sprintf("SL=%d/%s", sl, sys), func(b *testing.B) {
				var answers int
				for i := 0; i < b.N; i++ {
					for _, r := range bench.RunCDFSystems(c, benchTimeout) {
						if r.System == sys || (m == 3 && r.System == sys+"+stitch") {
							answers = r.Answers
						}
					}
				}
				b.ReportMetric(float64(answers), "answers")
			})
		}
	}
}

func BenchmarkFig13CDFm2(b *testing.B) { benchCDF(b, 2) }
func BenchmarkFig14CDFm3(b *testing.B) { benchCDF(b, 3) }

// Table 1: J1-J3 on the YAGO-like graph across systems.
func BenchmarkTable1YagoQueries(b *testing.B) {
	kg := gen.YAGOLike(500, 7)
	b.Run("all-systems", func(b *testing.B) {
		var rows []bench.Table1Row
		for i := 0; i < b.N; i++ {
			rows = bench.RunTable1(kg, benchTimeout)
		}
		b.ReportMetric(float64(len(rows)), "cells")
	})
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// Ablation: edge-set pruning (ESP) vs rooted-tree dedup only (GAM).
func BenchmarkAblationEdgeSetPruning(b *testing.B) {
	w := gen.Comb(4, 2, 3, 2, gen.Alternate)
	for _, alg := range []core.Algorithm{core.GAM, core.ESP} {
		b.Run(alg.String(), func(b *testing.B) { searchOnce(b, w, alg, eql.Filters{}) })
	}
}

// Ablation: Mo-tree injection cost/benefit (ESP vs MoESP on stars, where
// both are complete under the default order).
func BenchmarkAblationMoInjection(b *testing.B) {
	w := gen.Star(8, 3, gen.Alternate)
	for _, alg := range []core.Algorithm{core.ESP, core.MoESP} {
		b.Run(alg.String(), func(b *testing.B) { searchOnce(b, w, alg, eql.Filters{}) })
	}
}

// Ablation: the LESP exemption's overhead on top of MoESP.
func BenchmarkAblationLESPExemption(b *testing.B) {
	w := gen.Star(8, 3, gen.Alternate)
	for _, alg := range []core.Algorithm{core.MoESP, core.MoLESP} {
		b.Run(alg.String(), func(b *testing.B) { searchOnce(b, w, alg, eql.Filters{}) })
	}
}

// Ablation: multi-queue scheduling under seed-set skew (Section 4.9).
func BenchmarkAblationMultiQueue(b *testing.B) {
	kg := gen.YAGOLike(800, 3)
	g := kg.Graph
	big := kg.People
	small := []graph.NodeID{kg.Orgs[0]}
	seeds := core.Explicit(big, small)
	for _, mq := range []bool{false, true} {
		name := "single-queue"
		if mq {
			name = "multi-queue"
		}
		b.Run(name, func(b *testing.B) {
			var results int
			for i := 0; i < b.N; i++ {
				rs, _, err := core.Search(g, seeds, core.Options{
					Algorithm:  core.MoLESP,
					MultiQueue: mq,
					Filters:    eql.Filters{MaxEdges: 3, Limit: 50, Timeout: benchTimeout},
				})
				if err != nil {
					b.Fatal(err)
				}
				results = rs.Len()
			}
			b.ReportMetric(float64(results), "results")
		})
	}
}

// Ablation: filter push-down — LABEL restriction inside the search vs
// post-filtering a full enumeration.
func BenchmarkAblationFilterPushdown(b *testing.B) {
	w := gen.Chain(10)
	b.Run("pushed-LABEL", func(b *testing.B) {
		searchOnce(b, w, core.MoLESP, eql.Filters{Labels: []string{"a"}})
	})
	b.Run("post-filter", func(b *testing.B) {
		var kept int
		for i := 0; i < b.N; i++ {
			rs, _, err := core.Search(w.Graph, core.Explicit(w.Seeds...), core.Options{
				Algorithm: core.MoLESP, Filters: eql.Filters{Timeout: benchTimeout}})
			if err != nil {
				b.Fatal(err)
			}
			kept = 0
			for _, r := range rs.Results {
				ok := true
				for _, e := range r.Tree.Edges {
					if w.Graph.EdgeLabel(e) != "a" {
						ok = false
						break
					}
				}
				if ok {
					kept++
				}
			}
		}
		b.ReportMetric(float64(kept), "results")
	})
}

// End-to-end engine benchmark: the full EQL pipeline (BGP + CTP + join)
// on the running example.
func BenchmarkEngineQ1(b *testing.B) {
	g := gen.Sample()
	q, err := eql.Parse(`
SELECT ?x ?y ?z ?w WHERE {
  ?x citizenOf USA .
  ?y citizenOf France .
  ?z citizenOf France .
  FILTER type(?x) = entrepreneur .
  FILTER type(?y) = entrepreneur .
  FILTER type(?z) = politician .
  CONNECT ?x ?y ?z AS ?w MAX 5 .
}`)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.NewDefault(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Serving-path result cache (internal/qcache through the facade): the
// cold path runs the full BGP + CTP pipeline, the hit path is a lookup.
// The CI bench smoke runs both so the cache layer cannot rot; ctpbench
// -json measures the same contrast over the Figure 11 workload grid.
func benchCacheQuery(b *testing.B) (*DB, *Query) {
	b.Helper()
	g := RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := Open(g, nil, WithCache(64<<20, 0))
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery("SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 5 . }")
	if err != nil {
		b.Fatal(err)
	}
	return db, q
}

func BenchmarkCacheHit(b *testing.B) {
	db, q := benchCacheQuery(b)
	ctx := context.Background()
	if _, err := db.Run(ctx, q); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, info, err := db.RunWithInfo(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Hit || res.Len() == 0 {
			b.Fatalf("iteration was not a cache hit (info %+v, %d rows)", info, res.Len())
		}
	}
}

func BenchmarkCacheMiss(b *testing.B) {
	// A 1-byte budget rejects every admission, so the same query through
	// one stable DB is a genuine miss on every iteration: the measurement
	// is lookup miss + singleflight bookkeeping + search + admission
	// attempt, with no per-iteration DB setup in the timing.
	g := RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := Open(g, nil, WithCache(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery("SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 5 . }")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, info, err := db.RunWithInfo(ctx, q); err != nil {
			b.Fatal(err)
		} else if info.Hit {
			b.Fatal("cold run hit a cache")
		}
	}
}
