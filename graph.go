package ctpquery

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
)

// NodeID identifies a graph node. IDs are dense, starting at 0, in
// insertion order.
type NodeID int32

// EdgeID identifies a graph edge. IDs are dense, starting at 0, in
// insertion order.
type EdgeID int32

// Graph is a labeled graph (the data model of Definition 2.1: directed
// labeled edges, optional node types and string properties). Build one
// with a GraphBuilder or load one with LoadTriples, LoadSnapshot, or
// OpenGraph; the result is frozen — safe for any number of concurrent
// readers. Graph.Live upgrades a frozen graph to a mutable one (see
// Mutate, Snapshot, Epoch): readers then see immutable per-epoch views,
// so concurrency stays free.
type Graph struct {
	g     *graph.Graph // frozen graph, or the pinned view of a Snapshot
	store *graph.Store // non-nil for live graphs; g is nil then
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.view().NumNodes() }

// NumEdges returns the number of edges. On a live graph this counts the
// edge ID space, which may include slots of deleted edges until the next
// compaction; Stats reports live edges.
func (g *Graph) NumEdges() int { return g.view().NumEdges() }

// NodeLabel returns the label of node n ("" for unlabeled nodes).
func (g *Graph) NodeLabel(n NodeID) string { return g.view().NodeLabel(graph.NodeID(n)) }

// NodeByLabel returns the unique node labeled s; ok is false when the
// label is absent or shared by several nodes.
func (g *Graph) NodeByLabel(s string) (n NodeID, ok bool) {
	id, ok := g.view().NodeByLabel(s)
	return NodeID(id), ok
}

// Stats returns a one-line summary of the graph (node/edge/label counts,
// degree statistics).
func (g *Graph) Stats() string { return graph.ComputeStats(g.view()).String() }

// Fingerprint returns a 64-bit digest of the graph's logical content
// (labels, types, edges, properties). Two loads of the same data —
// including a snapshot or triples round trip — produce the same
// fingerprint, so it identifies the graph across processes; the
// query-result cache keys on it, which is also why cached entries never
// need invalidating: a different graph is a different fingerprint. On a
// live graph the fingerprint advances deterministically with every
// mutation batch (and survives compaction, which changes no content), so
// each epoch keys its own cache entries.
func (g *Graph) Fingerprint() uint64 { return g.view().Fingerprint() }

// WriteTriples writes the graph in the line-oriented triple text format
// ("src edgeLabel dst", "node type t" for types; see LoadTriples). Graphs
// with duplicate or empty node labels cannot be serialized this way.
func (g *Graph) WriteTriples(w io.Writer) error { return graph.WriteTriples(w, g.view()) }

// WriteSnapshot writes the graph in the compact binary snapshot format
// read by LoadSnapshot; unlike the triple text format it round-trips any
// graph, including ones with duplicate labels and properties. A live
// graph serializes the epoch current at the call.
func (g *Graph) WriteSnapshot(w io.Writer) error { return graph.WriteSnapshot(w, g.view()) }

// GraphBuilder assembles a Graph. It is not safe for concurrent use, and
// must not be reused after Build.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns an empty GraphBuilder.
func NewGraphBuilder() *GraphBuilder { return &GraphBuilder{b: graph.NewBuilder()} }

// AddNode adds a node with the given label and returns its ID. Labels
// need not be unique; reference the node by the returned ID.
func (b *GraphBuilder) AddNode(label string) NodeID { return NodeID(b.b.AddNode(label)) }

// AddType attaches a type to node n (duplicates are ignored). Types are
// matched by the EQL type(?v) pseudo-property.
func (b *GraphBuilder) AddType(n NodeID, typ string) { b.b.AddType(graph.NodeID(n), typ) }

// AddEdge adds a directed edge src --label--> dst and returns its ID.
func (b *GraphBuilder) AddEdge(src NodeID, label string, dst NodeID) EdgeID {
	return EdgeID(b.b.AddEdge(graph.NodeID(src), label, graph.NodeID(dst)))
}

// SetNodeProp sets string property p of node n, matched by the EQL
// p(?v) predicate syntax.
func (b *GraphBuilder) SetNodeProp(n NodeID, p, v string) {
	b.b.SetNodeProp(graph.NodeID(n), p, v)
}

// SetEdgeProp sets string property p of edge e.
func (b *GraphBuilder) SetEdgeProp(e EdgeID, p, v string) {
	b.b.SetEdgeProp(graph.EdgeID(e), p, v)
}

// Build freezes the builder into an immutable Graph, computing the
// adjacency lists and label/type indexes queries use. The builder must
// not be used afterwards.
func (b *GraphBuilder) Build() *Graph { return &Graph{g: b.b.Build()} }

// LoadTriples parses the whitespace-separated triple text format into a
// Graph: one "src edgeLabel dst" triple per line, double quotes around
// fields containing spaces, '#' comments, and "n type t" (or the RDF
// shorthand "n a t") declaring node types. Node identity is by label.
func LoadTriples(r io.Reader) (*Graph, error) {
	g, err := graph.LoadTriples(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadSnapshot reads a binary snapshot previously written by
// Graph.WriteSnapshot.
func LoadSnapshot(r io.Reader) (*Graph, error) {
	g, err := graph.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// OpenGraph loads a graph file, detecting the format by content: files
// beginning with the binary snapshot magic ("CTPG" — .snap/.ctpg files
// written by Graph.WriteSnapshot, loaded in milliseconds) are read as
// snapshots regardless of extension; anything else parses as triple
// text. A large server graph therefore starts fast no matter what the
// snapshot was named.
func OpenGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(magic) && string(magic[:]) == "CTPG" {
		return LoadSnapshot(f)
	}
	return LoadTriples(f)
}

// SampleGraph returns the running-example graph of the paper's Figure 1:
// twelve nodes (entrepreneurs, companies, countries, politicians, and a
// party) and nineteen labeled edges. Handy for experiments and tests.
func SampleGraph() *Graph { return &Graph{g: gen.Sample()} }

// RandomGraph builds a connected random graph with n nodes (labeled
// "n0".."n<n-1>") and at least e edges, drawing edge labels from labels
// (default "t") with directions chosen at random. The same seed always
// produces the same graph.
func RandomGraph(n, e int, labels []string, seed int64) *Graph {
	return &Graph{g: gen.Random(n, e, labels, rand.New(rand.NewSource(seed)))}
}

// label renders node n for messages: its label, or #id when unlabeled.
func (g *Graph) label(n graph.NodeID) string {
	if l := g.view().NodeLabel(n); l != "" {
		return l
	}
	return fmt.Sprintf("#%d", n)
}
