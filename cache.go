package ctpquery

import (
	"errors"
	"fmt"
	"time"

	"ctpquery/internal/fault"
)

// CacheConfig enables a query-result cache on a DB (Options.Cache or
// WithCache): completed results are stored in a byte-budgeted LRU keyed
// on (graph fingerprint, canonical query text, effective engine options)
// and served without re-running the search, and concurrent identical
// queries collapse into one engine execution (singleflight). Because the
// graph view a query runs against is immutable, cached entries never go
// stale — there is nothing to invalidate. On a live graph every mutation
// advances the fingerprint inside the key, so entries for an old epoch
// simply stop being asked for (and age out of the LRU), while a DB
// pinned to that epoch by Snapshot keeps hitting them; TTL exists only
// for deployments that want bounded entry lifetimes anyway.
//
// Partial results are never cached: a run that timed out, was truncated
// (LIMIT or a stopped stream), or was canceled is returned to its caller
// but re-executed on the next request, so the cache can only ever serve
// complete answers.
type CacheConfig struct {
	// MaxBytes is the cache budget, charged by Results.ApproxSize; <= 0
	// disables the cache.
	MaxBytes int64
	// TTL, when non-zero, additionally expires entries that old.
	TTL time.Duration
}

// WithCache enables a query-result cache with the given byte budget and
// optional TTL; see CacheConfig.
func WithCache(maxBytes int64, ttl time.Duration) QueryOption {
	return func(o *Options) { o.Cache = &CacheConfig{MaxBytes: maxBytes, TTL: ttl} }
}

// CacheInfo reports how one execution interacted with the DB's cache;
// QueryWithInfo/RunWithInfo return it so servers can expose per-request
// hit/miss/coalesced counters.
type CacheInfo struct {
	// Enabled reports whether the DB has a cache at all.
	Enabled bool
	// Hit reports the result was served from the cache without executing.
	Hit bool
	// Coalesced reports the call waited on another caller's in-flight
	// execution of the same key instead of running its own.
	Coalesced bool
}

// CacheStats is a snapshot of a DB's cache counters; see DB.CacheStats.
type CacheStats struct {
	Hits      int64 // executions served from a stored entry
	Misses    int64 // executions that ran the engine
	Coalesced int64 // executions that waited on an in-flight run
	Evictions int64 // entries dropped by the byte budget or TTL
	Rejected  int64 // completed runs not admitted (partial or oversized)
	Entries   int   // stored entries
	Bytes     int64 // stored payload bytes (Results.ApproxSize estimates)
	MaxBytes  int64 // configured budget
}

// IsInternalError reports whether err was the engine's (or the server's)
// own fault — a panic contained at one of the runtime's recovery
// boundaries — rather than a problem with the query. Servers use it to
// answer 500 instead of 400.
func IsInternalError(err error) bool {
	var pe *fault.PanicError
	return errors.As(err, &pe)
}

// ShedCache evicts result-cache entries until the stored bytes fit
// within frac of the configured budget (0 empties the cache) and
// returns the bytes freed. It is the degradation watchdog's memory
// relief valve; a DB without a cache returns 0.
func (db *DB) ShedCache(frac float64) int64 {
	if db.cache == nil {
		return 0
	}
	return db.cache.Shed(frac)
}

// cacheSignature digests every option that can change a query's result
// rows into the cache key. TrackAllocs is deliberately absent — it only
// samples observability counters — while Parallelism is included because
// LIMIT/TOP tie-breaking may keep a different same-sized subset across
// degrees (see Options.Parallelism).
func (o Options) cacheSignature() string {
	return fmt.Sprintf("alg=%s mq=%t skew=%d to=%d par=%t k=%d",
		o.Algorithm, o.MultiQueue, o.SkewThreshold, int64(o.DefaultTimeout), o.Parallel, o.Parallelism)
}
