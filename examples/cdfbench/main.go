// CDF walkthrough: generate a Connected Dense Forest benchmark graph
// (Section 5.3, Figure 9), run the paper's m=2 and m=3 EQL queries, and
// compare bidirectional MoLESP against its UNI-restricted variant and a
// path-returning baseline — a miniature of Figures 13 and 14.
//
//	go run ./examples/cdfbench
package main

import (
	"fmt"
	"time"

	"ctpquery/internal/bench"
	"ctpquery/internal/gen"
)

func main() {
	for _, m := range []int{2, 3} {
		c := gen.NewCDF(m, 32, 64, 3)
		fmt.Printf("=== %s: %d nodes, %d edges, %d expected link answers ===\n",
			c.Name(), c.Graph.NumNodes(), c.Graph.NumEdges(), c.NL)
		for _, r := range bench.RunCDFSystems(c, 5*time.Second) {
			status := ""
			if r.TimedOut {
				status = "  (timeout)"
			}
			fmt.Printf("%-18s %8.1f ms   %6d answers%s\n",
				r.System, float64(r.Time.Microseconds())/1000, r.Answers, status)
		}
		fmt.Println()
	}
	fmt.Println("MoLESP is the only bidirectional system; the check-only baselines")
	fmt.Println("return booleans, and stitching (m=3) counts raw path combinations.")
}
