// Investigative journalism walkthrough on the paper's Figure 1 graph: the
// query Q1 asks how an American entrepreneur, a French entrepreneur, and a
// French politician are connected, and requirement R2 — score-function
// orthogonality — is demonstrated by ranking the same result set under
// different scores: the smallest tree routes through a shared country
// node, while the label-diversity score surfaces the investment chain a
// journalist would care about.
//
//	go run ./examples/investigative
package main

import (
	"fmt"
	"log"
	"sort"

	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
	"ctpquery/internal/graph"
	"ctpquery/internal/score"
	"ctpquery/internal/tree"
)

func main() {
	g := gen.Sample()

	q, err := eql.Parse(`
SELECT ?x ?y ?z ?w WHERE {
  ?x citizenOf USA .
  ?y citizenOf France .
  ?z citizenOf France .
  FILTER type(?x) = entrepreneur .
  FILTER type(?y) = entrepreneur .
  FILTER type(?z) = politician .
  CONNECT ?x ?y ?z AS ?w MAX 5 .
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.NewDefault(g).Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %d connections between an American entrepreneur, a French\n"+
		"entrepreneur, and a French politician (<= 5 edges)\n\n", res.Table.NumRows())

	// Collect the distinct trees from the result.
	wCol := res.Table.Column("w")
	seen := map[int32]*tree.Tree{}
	for i := 0; i < res.Table.NumRows(); i++ {
		h := res.Table.Row(i)[wCol]
		seen[h] = res.Tree(h)
	}
	trees := make([]*tree.Tree, 0, len(seen))
	for _, t := range seen {
		trees = append(trees, t)
	}

	for _, scoreName := range []string{"size", "diversity"} {
		f, _ := score.Get(scoreName)
		ranked := rank(g, trees, f)
		fmt.Printf("=== top 3 by %q ===\n", scoreName)
		for i, t := range ranked[:min(3, len(ranked))] {
			fmt.Printf("%d. (score %.2f)\n%s\n\n", i+1, f(g, t), engine.FormatTree(g, t))
		}
	}
	fmt.Println("Same result set, different stories — the score function is the")
	fmt.Println("journalist's knob, not the search algorithm's (requirement R2).")
}

func rank(g *graph.Graph, trees []*tree.Tree, f core.ScoreFunc) []*tree.Tree {
	out := append([]*tree.Tree(nil), trees...)
	sort.SliceStable(out, func(i, j int) bool { return f(g, out[i]) > f(g, out[j]) })
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
