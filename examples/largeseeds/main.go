// Large-seed-set handling (Section 4.9): a J2-shaped query whose first
// seed set holds thousands of nodes, and a J3-shaped query with an N
// (all-nodes) seed set. The engine auto-enables multi-queue scheduling on
// skew and never materializes Init trees for universal sets, keeping both
// queries answerable — the Table 1 robustness story.
//
//	go run ./examples/largeseeds
package main

import (
	"fmt"
	"log"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/gen"
)

func main() {
	kg := gen.YAGOLike(2000, 42)
	g := kg.Graph
	fmt.Printf("knowledge graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	eng := engine.New(g, engine.Options{Algorithm: core.MoLESP})

	// J2 shape: every person with a citizenship (a very large seed set)
	// connected to organizations with headquarters.
	j2 := `
SELECT ?p ?o ?w WHERE {
  ?p citizenOf ?c .
  ?o headquarteredIn ?pl .
  CONNECT ?p ?o AS ?w MAX 3 LIMIT 100 TIMEOUT 5s .
}`
	runQuery(eng, "J2 (large seed set)", j2)

	// J3 shape: one person against N — every node of the graph.
	j3 := `
SELECT ?w WHERE {
  CONNECT person0 ?anything AS ?w MAX 2 LIMIT 200 TIMEOUT 5s .
}`
	runQuery(eng, "J3 (universal seed set)", j3)
}

func runQuery(eng *engine.Engine, name, text string) {
	q, err := eql.Parse(text)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := eng.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	st := res.CTPStats[0]
	fmt.Printf("%s:\n  %d rows in %v (CTP %v; %d provenances, timed out: %v)\n\n",
		name, res.Table.NumRows(), time.Since(start).Round(time.Millisecond),
		res.CTPTime.Round(time.Millisecond), st.Kept(), st.TimedOut)
}
