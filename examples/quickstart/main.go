// Quickstart: build a small graph, ask for the connections between three
// node groups with a CONNECT query, and print the trees — all through the
// public ctpquery facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ctpquery"
)

func main() {
	// A tiny collaboration graph.
	b := ctpquery.NewGraphBuilder()
	ada := b.AddNode("Ada")
	bob := b.AddNode("Bob")
	eve := b.AddNode("Eve")
	acme := b.AddNode("Acme")
	lab := b.AddNode("Lab")
	paper := b.AddNode("Paper")
	b.AddType(ada, "person")
	b.AddType(bob, "person")
	b.AddType(eve, "person")
	b.AddEdge(ada, "worksFor", acme)
	b.AddEdge(bob, "worksFor", acme)
	b.AddEdge(bob, "memberOf", lab)
	b.AddEdge(eve, "memberOf", lab)
	b.AddEdge(ada, "wrote", paper)
	b.AddEdge(eve, "reviewed", paper)
	g := b.Build()

	db, err := ctpquery.Open(g, nil) // nil options = MoLESP, no timeout
	if err != nil {
		log.Fatal(err)
	}

	// How are Ada, Bob, and Eve connected? Note there is no directed path
	// between any two of them — connection search is bidirectional.
	res, err := db.Query(context.Background(), `
SELECT ?w WHERE {
  CONNECT Ada Bob Eve AS ?w MAX 4 .
}`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d connecting trees:\n\n", res.Len())
	i := 0
	res.Each(func(r ctpquery.Row) bool {
		i++
		t := r.Tree("w")
		fmt.Printf("tree %d (%d edges):\n%s\n\n", i, t.Size(), t.Format())
		return true
	})
}
