// Quickstart: build a small graph, ask for the connections between three
// node groups with a CONNECT query, and print the trees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/graph"
)

func main() {
	// A tiny collaboration graph.
	b := graph.NewBuilder()
	ada := b.AddNode("Ada")
	bob := b.AddNode("Bob")
	eve := b.AddNode("Eve")
	acme := b.AddNode("Acme")
	lab := b.AddNode("Lab")
	paper := b.AddNode("Paper")
	b.AddType(ada, "person")
	b.AddType(bob, "person")
	b.AddType(eve, "person")
	b.AddEdge(ada, "worksFor", acme)
	b.AddEdge(bob, "worksFor", acme)
	b.AddEdge(bob, "memberOf", lab)
	b.AddEdge(eve, "memberOf", lab)
	b.AddEdge(ada, "wrote", paper)
	b.AddEdge(eve, "reviewed", paper)
	g := b.Build()

	// How are Ada, Bob, and Eve connected? Note there is no directed path
	// between any two of them — connection search is bidirectional.
	q, err := eql.Parse(`
SELECT ?w WHERE {
  CONNECT Ada Bob Eve AS ?w MAX 4 .
}`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := engine.NewDefault(g).Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d connecting trees:\n\n", res.Table.NumRows())
	for i := 0; i < res.Table.NumRows(); i++ {
		t := res.Tree(res.Table.Row(i)[0])
		fmt.Printf("tree %d (%d edges):\n%s\n\n", i+1, t.Size(), engine.FormatTree(g, t))
	}
}
