package ctpquery_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ctpquery"
)

func mustCacheStats(t *testing.T, db *ctpquery.DB) ctpquery.CacheStats {
	t.Helper()
	st, ok := db.CacheStats()
	if !ok {
		t.Fatal("DB has no cache")
	}
	return st
}

// A cache hit must return results equal to a cold run: golden equality on
// the paper's running example and on random graphs.
func TestCacheHitEqualsColdRun(t *testing.T) {
	type tc struct {
		name  string
		graph *ctpquery.Graph
		query string
	}
	cases := []tc{
		{"fig1", ctpquery.SampleGraph(), figure1Query},
	}
	for _, seed := range []int64{7, 42} {
		cases = append(cases, tc{
			fmt.Sprintf("random-seed%d", seed),
			ctpquery.RandomGraph(300, 900, []string{"knows", "cites"}, seed),
			"SELECT ?w WHERE { CONNECT n1 n200 AS ?w MAX 5 . }",
		})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cold, err := ctpquery.Open(c.graph, nil)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := ctpquery.Open(c.graph, nil, ctpquery.WithCache(16<<20, 0))
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.Query(context.Background(), c.query)
			if err != nil {
				t.Fatal(err)
			}
			first, info, err := cached.QueryWithInfo(context.Background(), c.query)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Enabled || info.Hit {
				t.Fatalf("first run info = %+v, want enabled miss", info)
			}
			second, info, err := cached.QueryWithInfo(context.Background(), c.query)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Hit {
				t.Fatalf("second run info = %+v, want hit", info)
			}
			wantRows := rowStrings(want)
			for run, res := range map[string]*ctpquery.Results{"cold-path": first, "hit-path": second} {
				got := rowStrings(res)
				if len(got) != len(wantRows) {
					t.Fatalf("%s: %d rows, want %d", run, len(got), len(wantRows))
				}
				for i := range got {
					if got[i] != wantRows[i] {
						t.Fatalf("%s row %d = %q, want %q", run, i, got[i], wantRows[i])
					}
				}
			}
			if first.ApproxSize() <= 0 {
				t.Errorf("ApproxSize = %d, want > 0", first.ApproxSize())
			}
			st := mustCacheStats(t, cached)
			if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
				t.Errorf("cache stats = %+v", st)
			}
		})
	}
}

// K concurrent identical queries must collapse into exactly one engine
// execution: one miss, K-1 hits or coalesced waiters.
func TestCacheSingleflightFacade(t *testing.T) {
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, nil, ctpquery.WithCache(32<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	const query = "SELECT ?w WHERE { CONNECT n1 n400 AS ?w MAX 6 . }"
	var wg sync.WaitGroup
	results := make([]*ctpquery.Results, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := db.QueryWithInfo(context.Background(), query)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	st := mustCacheStats(t, db)
	if st.Misses != 1 {
		t.Fatalf("%d engine executions, want singleflight to allow exactly 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced != k-1 {
		t.Fatalf("hits %d + coalesced %d = %d, want %d", st.Hits, st.Coalesced, st.Hits+st.Coalesced, k-1)
	}
	for i, res := range results {
		if res == nil || res.Len() != results[0].Len() {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
}

// A run that timed out is returned to its caller but never admitted: the
// next identical request re-executes instead of being served the stale
// partial.
func TestCacheRejectsTimedOut(t *testing.T) {
	db, err := ctpquery.Open(ctpquery.SampleGraph(), nil, ctpquery.WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline clamps every search to a nanosecond:
	// deterministic partial results, flagged TimedOut.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	partial, err := db.Query(ctx, figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.TimedOut() {
		t.Fatal("expired deadline did not flag TimedOut; test premise broken")
	}
	if st := mustCacheStats(t, db); st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("partial result admitted: %+v", st)
	}

	full, info, err := db.QueryWithInfo(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit {
		t.Fatal("second request served the stale partial from cache")
	}
	if full.TimedOut() {
		t.Fatal("unbounded re-execution still timed out")
	}
	if full.Len() == 0 {
		t.Fatal("re-execution returned no rows")
	}
	if st := mustCacheStats(t, db); st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("cache stats after re-execution = %+v", st)
	}
}

// A run a CONNECT LIMIT stopped early IS cacheable: the LIMIT is part
// of the canonical query text, so every future request of this key
// wants exactly that bound — the run is the complete answer to the
// query as written, and caching it keeps the kept subset stable across
// requests. (Timed-out runs remain uncacheable: the time budget is
// deliberately not part of the key.)
func TestCacheAdmitsLimitTruncated(t *testing.T) {
	db, err := ctpquery.Open(ctpquery.SampleGraph(), nil, ctpquery.WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	const query = "SELECT ?w WHERE { CONNECT Alice France AS ?w MAX 3 LIMIT 1 . }"
	res, err := db.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated() {
		t.Fatal("LIMIT 1 did not truncate; test premise broken")
	}
	res2, info, err := db.QueryWithInfo(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Hit {
		t.Fatal("LIMIT-completed result was not served from cache")
	}
	if res2.Len() != res.Len() {
		t.Fatalf("cached rows = %d, want %d", res2.Len(), res.Len())
	}
	if st := mustCacheStats(t, db); st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// A canceled run errors out and leaves nothing behind; the next request
// executes normally.
func TestCacheRejectsCanceled(t *testing.T) {
	db, err := ctpquery.Open(ctpquery.SampleGraph(), nil, ctpquery.WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(ctx, figure1Query); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	if st := mustCacheStats(t, db); st.Entries != 0 {
		t.Fatalf("canceled run admitted: %+v", st)
	}
	res, info, err := db.QueryWithInfo(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hit || res.Len() == 0 {
		t.Fatalf("recovery run: info=%+v len=%d", info, res.Len())
	}

	// Cancellation wins even when the entry is now warm: a hit must not
	// change Run's documented ctx.Err() contract.
	if _, err := db.Query(ctx, figure1Query); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm-cache canceled run returned %v, want context.Canceled", err)
	}
}

// A waiter whose own deadline expires while queued behind a slow leader
// must get Run's deadline semantics — partial results flagged TimedOut,
// never a DeadlineExceeded error.
func TestCacheWaiterDeadlineYieldsPartial(t *testing.T) {
	g := ctpquery.RandomGraph(800, 2400, []string{"knows", "cites", "funds"}, 42)
	db, err := ctpquery.Open(g, nil, ctpquery.WithCache(32<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	// The exhaustive 6-seed enumeration runs for far longer than the test;
	// the leader holds the singleflight slot until we cancel it.
	q, err := ctpquery.ParseQuery("SELECT ?w WHERE { CONNECT n1 n2 n3 n4 n5 n6 AS ?w . }")
	if err != nil {
		t.Fatal(err)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := db.Run(leaderCtx, q); !errors.Is(err, context.Canceled) {
			t.Errorf("leader returned %v, want context.Canceled", err)
		}
	}()
	// Let the leader register its in-flight slot (its search runs for
	// seconds; 100ms is orders of magnitude inside that window).
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, info, err := db.RunWithInfo(ctx, q)
	if err != nil {
		t.Fatalf("waiter with expired deadline errored: %v", err)
	}
	if !res.TimedOut() {
		t.Error("waiter's fallback run not flagged TimedOut")
	}
	if info.Hit {
		t.Errorf("waiter info = %+v, want a direct partial run", info)
	}
	if st := mustCacheStats(t, db); st.Entries != 0 {
		t.Errorf("a partial run was admitted: %+v", st)
	}

	cancelLeader()
	select {
	case <-leaderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leader did not honor cancellation")
	}
}

// Derived DBs (With/WithOptions) share the parent's cache instance; the
// options signature inside the key keeps their entries apart.
func TestDerivedDBSharesCache(t *testing.T) {
	base, err := ctpquery.Open(ctpquery.SampleGraph(), nil, ctpquery.WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	derived, err := base.With(ctpquery.WithAlgorithm("GAM"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Query(context.Background(), figure1Query); err != nil {
		t.Fatal(err)
	}
	// Different algorithm, different key: a miss even though the cache is
	// shared.
	if _, info, err := derived.QueryWithInfo(context.Background(), figure1Query); err != nil {
		t.Fatal(err)
	} else if info.Hit {
		t.Fatal("different algorithm served from the MoLESP entry")
	}
	// Same algorithm through the derived handle: a hit on the shared
	// instance.
	if _, info, err := derived.QueryWithInfo(context.Background(), figure1Query); err != nil {
		t.Fatal(err)
	} else if !info.Hit {
		t.Fatal("derived DB did not share the parent cache")
	}
	st := mustCacheStats(t, base)
	if st.Misses != 2 || st.Hits != 1 || st.Entries != 2 {
		t.Fatalf("shared cache stats = %+v", st)
	}
	if dst := mustCacheStats(t, derived); dst != st {
		t.Fatalf("derived stats %+v != base stats %+v", dst, st)
	}
}

// RunStream bypasses the cache in both directions: it re-executes even
// when an entry exists, and its runs are never admitted.
func TestStreamBypassesCache(t *testing.T) {
	db, err := ctpquery.Open(ctpquery.SampleGraph(), nil, ctpquery.WithCache(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctpquery.ParseQuery(figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	streamed := 0
	if _, err := db.RunStream(context.Background(), q, func(int, *ctpquery.Tree) bool {
		streamed++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("stream callback never fired — a cached result cannot stream")
	}
	st := mustCacheStats(t, db)
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("RunStream touched the cache: %+v", st)
	}
}
