// End-to-end tests of live graphs through the public facade: mutation,
// epoch pinning, snapshot DBs, cache interaction, and derived-DB sharing.
package ctpquery_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ctpquery"
)

func liveSample(t *testing.T) *ctpquery.Graph {
	t.Helper()
	g := ctpquery.SampleGraph().Live()
	if !g.IsLive() {
		t.Fatal("Live graph reports IsLive == false")
	}
	return g
}

// TestLiveQueryUnchanged: queries over an unmutated live graph return
// exactly what the frozen graph returns.
func TestLiveQueryUnchanged(t *testing.T) {
	frozen := mustOpenSample(t, nil)
	live, err := ctpquery.Open(liveSample(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := frozen.Query(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := live.Query(context.Background(), figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStrings(got), rowStrings(want)) {
		t.Fatalf("live (epoch 0) diverged from frozen:\n%v\nvs\n%v",
			rowStrings(got), rowStrings(want))
	}
	if got.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", got.Epoch())
	}
}

// TestLiveMutationChangesAnswers: adding and deleting edges changes query
// results at the next epoch; a Results handle keeps rendering against its
// pinned epoch.
func TestLiveMutationChangesAnswers(t *testing.T) {
	g := liveSample(t)
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?x WHERE { ?x citizenOf USA . }`
	before, err := db.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	res, err := db.Mutate(ctpquery.Batch{
		AddNodes: []ctpquery.NodeAdd{{Label: "Zed", Types: []string{"entrepreneur"}}},
		AddEdges: []ctpquery.Triple{{Source: "Zed", Label: "citizenOf", Target: "USA"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.NodesAdded != 1 || res.EdgesAdded != 1 {
		t.Fatalf("MutateResult = %+v", res)
	}

	after, err := db.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != before.Len()+1 {
		t.Fatalf("rows: %d before, %d after add", before.Len(), after.Len())
	}
	if !strings.Contains(strings.Join(rowStrings(after), "\n"), "Zed") {
		t.Fatal("added node missing from results")
	}
	// The pre-mutation Results still render the old epoch.
	if got := before.Len(); got != len(rowStrings(before)) || before.Epoch() != 0 {
		t.Fatalf("pinned results changed: len=%d epoch=%d", got, before.Epoch())
	}

	if _, err := db.Mutate(ctpquery.Batch{
		DelEdges: []ctpquery.Triple{{Source: "Zed", Label: "citizenOf", Target: "USA"}},
	}); err != nil {
		t.Fatal(err)
	}
	final, err := db.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStrings(final), rowStrings(before)) {
		t.Fatalf("delete did not restore answers:\n%v\nvs\n%v",
			rowStrings(final), rowStrings(before))
	}
}

// TestLiveCacheInvalidation is the cache acceptance check: after Mutate a
// repeated query misses (new fingerprint) while a DB snapshotted at the
// old epoch still hits its warm entry.
func TestLiveCacheInvalidation(t *testing.T) {
	g := liveSample(t)
	db, err := ctpquery.Open(g, &ctpquery.Options{Cache: &ctpquery.CacheConfig{MaxBytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, info, err := db.QueryWithInfo(ctx, figure1Query); err != nil || info.Hit {
		t.Fatalf("first run: hit=%v err=%v", info.Hit, err)
	}
	if _, info, err := db.QueryWithInfo(ctx, figure1Query); err != nil || !info.Hit {
		t.Fatalf("repeat at same epoch: hit=%v err=%v", info.Hit, err)
	}

	pinned := db.Snapshot()

	if _, err := db.Mutate(ctpquery.Batch{
		AddEdges: []ctpquery.Triple{{Source: "Alice", Label: "knows", Target: "Bob"}},
	}); err != nil {
		t.Fatal(err)
	}

	// The live DB is at a new epoch: fingerprint changed, must miss.
	if _, info, err := db.QueryWithInfo(ctx, figure1Query); err != nil || info.Hit {
		t.Fatalf("after mutation: hit=%v err=%v (stale hit would be a correctness bug)", info.Hit, err)
	}
	// The pinned snapshot shares the cache and its old fingerprint: hits.
	res, info, err := pinned.QueryWithInfo(ctx, figure1Query)
	if err != nil || !info.Hit {
		t.Fatalf("pinned snapshot: hit=%v err=%v", info.Hit, err)
	}
	if res.Epoch() != 0 {
		t.Fatalf("pinned snapshot answered epoch %d", res.Epoch())
	}
}

// TestDerivedDBsShareStoreAndCache is the With/WithOptions regression
// test: a derived DB must see the parent's mutations (shared store) and
// share its cache instance.
func TestDerivedDBsShareStoreAndCache(t *testing.T) {
	g := liveSample(t)
	cfg := &ctpquery.CacheConfig{MaxBytes: 1 << 20}
	db, err := ctpquery.Open(g, &ctpquery.Options{Cache: cfg})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := db.With(ctpquery.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = `SELECT ?x WHERE { ?x citizenOf USA . }`

	if _, err := db.Mutate(ctpquery.Batch{
		AddNodes: []ctpquery.NodeAdd{{Label: "Zed"}},
		AddEdges: []ctpquery.Triple{{Source: "Zed", Label: "citizenOf", Target: "USA"}},
	}); err != nil {
		t.Fatal(err)
	}

	// Shared store: the derived DB sees the mutation...
	res, err := derived.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(rowStrings(res), "\n"), "Zed") {
		t.Fatal("derived DB does not see parent's mutation (store not shared)")
	}
	if res.Epoch() != 1 {
		t.Fatalf("derived DB pinned epoch %d, want 1", res.Epoch())
	}
	// ...and mutations through the derived DB reach the parent.
	if _, err := derived.Mutate(ctpquery.Batch{
		DelEdges: []ctpquery.Triple{{Source: "Zed", Label: "citizenOf", Target: "USA"}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := db.Graph().Epoch(); got != 2 {
		t.Fatalf("parent epoch = %d after derived mutation, want 2", got)
	}

	// Shared cache: both DBs report the same cache instance's stats.
	if _, err := db.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	st1 := mustCacheStats(t, db)
	st2 := mustCacheStats(t, derived)
	if st1 != st2 {
		t.Fatalf("parent and derived caches diverge: %+v vs %+v (cache not shared)", st1, st2)
	}
}

// TestLiveQueryPinnedDuringCompaction is the epoch-isolation acceptance
// check: a query's results at epoch N are byte-identical whether or not a
// compaction (and further mutations) run concurrently.
func TestLiveQueryPinnedDuringCompaction(t *testing.T) {
	g := ctpquery.RandomGraph(400, 1200, []string{"knows", "cites"}, 11).Live()
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT ?w WHERE { CONNECT n1 n200 AS ?w MAX 5 . }`
	ctx := context.Background()

	want, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowStrings(want)
	pinned := db.Snapshot()

	// Churn: concurrent mutations and a forced compaction while the pinned
	// DB re-runs the query.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_, err := db.Mutate(ctpquery.Batch{
				AddEdges: []ctpquery.Triple{{Source: "n1", Label: "knows", Target: "n200"}},
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
		if err := g.CompactNow(); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 20; i++ {
		res, err := pinned.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := rowStrings(res); !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("pinned query diverged under concurrent churn (iteration %d):\n%v\nvs\n%v",
				i, got, wantRows)
		}
	}
	wg.Wait()
	g.Quiesce()

	// And after the dust settles, the pinned DB still answers epoch 0.
	res, err := pinned.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(res); !reflect.DeepEqual(got, wantRows) {
		t.Fatal("pinned query diverged after compaction settled")
	}
	// The live DB, meanwhile, sees the extra direct edges.
	live, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() <= want.Len() {
		t.Fatalf("live query does not see added edges: %d <= %d", live.Len(), want.Len())
	}
}

// TestLiveErrors: mutating a frozen graph fails; a frozen DB's Snapshot
// is itself.
func TestLiveErrors(t *testing.T) {
	g := ctpquery.SampleGraph()
	if _, err := g.Mutate(ctpquery.Batch{}); err == nil {
		t.Fatal("Mutate on frozen graph succeeded")
	}
	if err := g.CompactNow(); err == nil {
		t.Fatal("CompactNow on frozen graph succeeded")
	}
	db, err := ctpquery.Open(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Snapshot() != db {
		t.Fatal("Snapshot of frozen DB is not the DB itself")
	}
	if _, ok := g.StoreStats(); ok {
		t.Fatal("frozen graph reports store stats")
	}
}

// TestLiveWriteFormats: a mutated live graph round-trips through triples
// and snapshot serialization at its current epoch.
func TestLiveWriteFormats(t *testing.T) {
	g := liveSample(t)
	if _, err := g.Mutate(ctpquery.Batch{
		AddNodes: []ctpquery.NodeAdd{{Label: "Zed", Types: []string{"entrepreneur"}}},
		AddEdges: []ctpquery.Triple{{Source: "Zed", Label: "citizenOf", Target: "USA"}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WriteTriples(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ctpquery.LoadTriples(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Fatalf("triples round trip: %d nodes, want %d", back.NumNodes(), g.NumNodes())
	}
}
