package ctpquery

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"ctpquery/internal/core"
	"ctpquery/internal/engine"
	"ctpquery/internal/eql"
	"ctpquery/internal/obs"
	"ctpquery/internal/qcache"
)

// Options configures query evaluation. The zero value selects MoLESP, the
// paper's recommended algorithm, with sequential CTP evaluation and no
// default timeout.
type Options struct {
	// Algorithm names the CTP evaluation algorithm: one of Algorithms()
	// (case-insensitive). Empty selects MoLESP.
	Algorithm string

	// Parallel evaluates a query's CTPs concurrently, one goroutine each;
	// CTP searches are independent, so this is always safe.
	Parallel bool

	// Parallelism shards each individual CONNECT search across this many
	// workers (the GAM-family parallel runtime): 0 keeps the sequential
	// kernel, negative selects GOMAXPROCS. It composes with Parallel —
	// Parallel spreads separate CONNECT clauses, Parallelism splits one.
	// Result multisets are unchanged on the paper's completeness envelope
	// (GAM any m, ESP/LESP m = 2, MoLESP m <= 3; see DESIGN.md §6), and
	// parallel results are returned in a canonical order (score, then
	// size, then edge set). LIMIT/TOP may keep a different same-sized
	// subset than a sequential run when results tie.
	Parallelism int

	// MultiQueue forces the Section 4.9 multi-queue scheduling; even when
	// false it is auto-enabled for universal or heavily skewed seed sets.
	MultiQueue bool

	// SkewThreshold is the largest-to-smallest seed set size ratio beyond
	// which multi-queue scheduling auto-enables (default 32).
	SkewThreshold int

	// DefaultTimeout bounds each CTP search when the query has no TIMEOUT
	// filter (0 = unbounded). Context deadlines passed to Query/Run clamp
	// this further.
	DefaultTimeout time.Duration

	// TrackAllocs samples per-search heap allocation counts into
	// Results.SearchStats — the observability hook ctpserve exposes.
	// Concurrent queries inflate each other's counts; prefer the
	// testing.B benchmarks for precise numbers.
	TrackAllocs bool

	// Cache, when non-nil with a positive MaxBytes, caches completed
	// query results and collapses concurrent identical queries into one
	// execution; see CacheConfig. Run and Query consult it; RunStream and
	// QueryStream never do (their per-tree callback is a side effect a
	// cached result could not replay).
	Cache *CacheConfig
}

// engineOptions is the single construction site for engine.Options: Open
// and RunStream both call it, so a new facade option cannot be wired into
// one execution path and silently missed in the other. onResult — the
// streaming callback — is the only difference between the two paths.
func (o Options) engineOptions(alg core.Algorithm, onResult func(int, core.Result) bool) engine.Options {
	return engine.Options{
		Algorithm:      alg,
		MultiQueue:     o.MultiQueue,
		SkewThreshold:  o.SkewThreshold,
		DefaultTimeout: o.DefaultTimeout,
		Parallel:       o.Parallel,
		Parallelism:    o.Parallelism,
		TrackAllocs:    o.TrackAllocs,
		OnCTPResult:    onResult,
	}
}

// Algorithms lists the CTP evaluation algorithm names accepted by
// Options.Algorithm, in the paper's presentation order (Section 4):
// BFT, BFT-M, BFT-AM, GAM, ESP, MoESP, LESP, MoLESP.
func Algorithms() []string {
	as := core.Algorithms()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}

// parseAlgorithm resolves a case-insensitive algorithm name; "" means
// MoLESP. "BFTM"/"BFTAM" are accepted for "BFT-M"/"BFT-AM".
func parseAlgorithm(name string) (core.Algorithm, error) {
	if name == "" {
		return core.MoLESP, nil
	}
	canon := strings.ReplaceAll(name, "-", "")
	for _, a := range core.Algorithms() {
		if strings.EqualFold(strings.ReplaceAll(a.String(), "-", ""), canon) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("ctpquery: unknown algorithm %q (have %s)",
		name, strings.Join(Algorithms(), ", "))
}

// QueryOption adjusts Options functionally; pass options to Open (after
// the base Options) or derive a DB with DB.With.
type QueryOption func(*Options)

// WithParallelism shards each CONNECT search across workers workers; 0
// restores the sequential kernel and negative values select GOMAXPROCS.
// See Options.Parallelism for the equivalence guarantees.
func WithParallelism(workers int) QueryOption {
	return func(o *Options) { o.Parallelism = workers }
}

// WithAlgorithm selects the CTP evaluation algorithm by name (one of
// Algorithms(), case-insensitive).
func WithAlgorithm(name string) QueryOption {
	return func(o *Options) { o.Algorithm = name }
}

// Query is a parsed, validated EQL query. A Query is immutable and may be
// executed any number of times, concurrently, against any DB.
type Query struct {
	q *eql.Query
}

// ParseQuery parses and validates the textual form of an EQL query, e.g.
//
//	SELECT ?x ?w
//	WHERE {
//	  ?x citizenOf USA .
//	  CONNECT ?x France AS ?w MAX 4 .
//	}
//
// See README.md for the full language reference.
func ParseQuery(text string) (*Query, error) {
	q, err := eql.Parse(text)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// String renders the query in the surface syntax accepted by ParseQuery,
// so ParseQuery(q.String()) round-trips.
func (q *Query) String() string { return q.q.String() }

// Variables returns the query's projected head variables, in order.
func (q *Query) Variables() []string { return append([]string(nil), q.q.Head...) }

// DB is a queryable handle over one graph: the facade over the EQL parser
// (internal/eql), the evaluation engine (internal/engine), and the CTP
// connection-search algorithms (internal/core). A DB is cheap to create,
// holds no mutable state, and is safe for concurrent use — a server can
// share one DB (or several, with different Options) across all requests.
//
// Over a live graph (Graph.Live), every execution pins the epoch current
// at entry: the whole run — cache key, search, result rendering — sees
// that one immutable view, however many Mutate calls land meanwhile.
type DB struct {
	g    *Graph
	opts Options

	// cache is the query-result cache (nil when Options.Cache is unset);
	// optsSig is this DB's precomputed contribution to cache keys. Derived
	// DBs (WithOptions, With) share the parent's graph (and so its live
	// store) and cache instance — the options signature inside the key
	// keeps their entries apart.
	cache   *qcache.Cache
	optsSig string
}

// Open creates a DB over g. A nil opts selects the defaults (MoLESP,
// sequential, no timeout); QueryOptions apply on top of opts, e.g.
//
//	db, err := ctpquery.Open(g, nil, ctpquery.WithParallelism(4))
//
// The only error is an unknown algorithm name.
func Open(g *Graph, opts *Options, query ...QueryOption) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	for _, qo := range query {
		qo(&o)
	}
	alg, err := parseAlgorithm(o.Algorithm)
	if err != nil {
		return nil, err
	}
	o.Algorithm = alg.String()
	db := &DB{
		g:       g,
		opts:    o,
		optsSig: o.cacheSignature(),
	}
	if o.Cache != nil && o.Cache.MaxBytes > 0 {
		db.cache = qcache.New(o.Cache.MaxBytes, o.Cache.TTL)
	}
	return db, nil
}

// Graph returns the graph the DB queries.
func (db *DB) Graph() *Graph { return db.g }

// Options returns the DB's effective options (with the algorithm name
// canonicalized).
func (db *DB) Options() Options { return db.opts }

// WithOptions returns a DB sharing this DB's graph but using opts — the
// way to serve per-request algorithm or timeout choices without reloading
// the graph. When the cache configuration is unchanged, the derived DB
// also shares this DB's cache instance, so per-request overrides hit one
// server-wide cache instead of fragmenting into per-request caches (the
// options signature inside each key keeps differently-configured results
// apart).
func (db *DB) WithOptions(opts Options) (*DB, error) {
	// Decide sharing before Open so the per-request override path never
	// constructs a fresh cache just to discard it.
	share := db.cache != nil && opts.Cache != nil && *db.opts.Cache == *opts.Cache
	openOpts := opts
	if share {
		openOpts.Cache = nil
	}
	ndb, err := Open(db.g, &openOpts)
	if err != nil {
		return nil, err
	}
	if share {
		ndb.cache = db.cache
		ndb.opts.Cache = opts.Cache
	}
	return ndb, nil
}

// With derives a DB from this one with the QueryOptions applied, e.g.
// db.With(WithParallelism(4)). Like WithOptions, it shares this DB's
// cache when the cache configuration is unchanged.
func (db *DB) With(query ...QueryOption) (*DB, error) {
	opts := db.opts
	for _, qo := range query {
		qo(&opts)
	}
	return db.WithOptions(opts)
}

// Query parses text and executes it; see Run for the execution semantics.
func (db *DB) Query(ctx context.Context, text string) (*Results, error) {
	q, err := ParseQuery(text)
	if err != nil {
		return nil, err
	}
	return db.Run(ctx, q)
}

// QueryWithInfo is Query plus the execution's CacheInfo, for servers
// surfacing per-request hit/miss/coalesced counters.
func (db *DB) QueryWithInfo(ctx context.Context, text string) (*Results, CacheInfo, error) {
	q, err := ParseQuery(text)
	if err != nil {
		return nil, CacheInfo{Enabled: db.cache != nil}, err
	}
	return db.RunWithInfo(ctx, q)
}

// Run executes q. Context cancellation is honored between evaluation
// phases and inside CTP searches and returns ctx.Err(); a context
// deadline instead clamps each CTP's time budget so an expiring deadline
// yields the partial results found so far, flagged by Results.TimedOut —
// the same semantics as the query-level TIMEOUT filter.
//
// On a DB with Options.Cache, Run serves completed results from the
// cache and collapses concurrent identical queries into one execution;
// partial (timed-out or canceled) runs are returned to their caller but
// never cached, so the next identical query re-executes. A run stopped
// by the query's own LIMIT is complete for its key and is cached.
func (db *DB) Run(ctx context.Context, q *Query) (*Results, error) {
	res, _, err := db.RunWithInfo(ctx, q)
	return res, err
}

// RunWithInfo is Run plus the execution's CacheInfo.
func (db *DB) RunWithInfo(ctx context.Context, q *Query) (*Results, CacheInfo, error) {
	// An already-canceled context returns ctx.Err() regardless of cache
	// warmth — the engine enforces this on the cold path, and a hit must
	// not silently bypass the documented cancellation contract. (An
	// expired *deadline* is different: its contract is "best results the
	// budget allows", and a complete cached answer satisfies it.)
	if ctx.Err() == context.Canceled {
		return nil, CacheInfo{Enabled: db.cache != nil}, ctx.Err()
	}
	// Pin the epoch before anything else: the cache key and the execution
	// must describe the same view, or a mutation landing between them
	// would file one epoch's answer under another's fingerprint.
	pg := db.g.Snapshot()
	if db.cache == nil {
		res, err := db.runUncached(ctx, pg, q)
		return res, CacheInfo{}, err
	}
	info := CacheInfo{Enabled: true}
	key := qcache.Key{Graph: pg.Fingerprint(), Query: q.String(), Opts: db.optsSig}
	// Cache span: covers the lookup, a coalesced waiter's wait on the
	// leader, or the leader's own execution (whose engine.eval span nests
	// under it). Role attrs are attached once the outcome is known.
	cacheSpan := obs.FromContext(ctx).Child("cache")
	// End is idempotent; the defer is the panic backstop (a contained
	// panic inside Do must not leak the span), the explicit Ends below
	// stamp the accurate duration on every ordinary path.
	defer cacheSpan.End()
	ctx = obs.With(ctx, cacheSpan)
	v, hit, coalesced, err := db.cache.Do(ctx, key, func() (any, int64, bool, error) {
		res, err := db.runUncached(ctx, pg, q)
		if err != nil {
			return nil, 0, false, err
		}
		// Admission: only complete answers may be cached. A timed-out
		// result is a valid subset for this caller, but the time budget
		// is deliberately not part of the key, so a later request might
		// have afforded the full run — serving the partial would
		// silently drop answers. A LIMIT-truncated run is different:
		// the LIMIT lives in the canonical query text, so every future
		// request of this key wants exactly that bound — the run IS the
		// complete answer, and caching it keeps the kept subset stable
		// across requests. Truncation the query's own limits cannot
		// explain stays out (defensively — the streaming callback, the
		// other truncation source, bypasses the cache entirely). A
		// post-run canceled context means we cannot even be sure the
		// flags are trustworthy.
		admit := !res.TimedOut() && ctx.Err() == nil &&
			(!res.Truncated() || queryHasLimit(q))
		return res, res.ApproxSize(), admit, nil
	})
	info.Hit, info.Coalesced = hit, coalesced
	cacheSpan.AttrBool("hit", hit).AttrBool("coalesced", coalesced)
	if err != nil {
		// A waiter whose own deadline expired while queued behind the
		// leader must still get Run's deadline semantics — partial
		// results, never an error. Only the waiter path can surface
		// DeadlineExceeded (the engine turns an expiring deadline into
		// TimedOut results, and cancellation into context.Canceled), so
		// run directly: the engine clamps the spent budget and returns
		// immediately with whatever that allows.
		if errors.Is(err, context.DeadlineExceeded) {
			res, rerr := db.runUncached(ctx, pg, q)
			cacheSpan.End()
			return res, CacheInfo{Enabled: true}, rerr
		}
		cacheSpan.Error(err).End()
		return nil, info, err
	}
	cacheSpan.End()
	return v.(*Results), info, nil
}

// queryHasLimit reports whether q carries a result bound in its own
// text — a CTP LIMIT filter or the top-level solution modifier — i.e.
// whether a Truncated flag is attributable to the query itself rather
// than to the caller's run.
func queryHasLimit(q *Query) bool {
	if q.q.Limit > 0 {
		return true
	}
	for _, c := range q.q.CTPs {
		if c.Filters.Limit > 0 {
			return true
		}
	}
	return false
}

// runUncached executes q against pg, the view pinned at entry. The
// Results keep pg, so rendering rows and trees later reads the same epoch
// the search ran on. Engines are two-field structs — building one per run
// costs nothing and removes any stale-graph state from the DB.
func (db *DB) runUncached(ctx context.Context, pg *Graph, q *Query) (*Results, error) {
	eng := engine.New(pg.view(), db.opts.engineOptions(mustAlgorithm(db.opts.Algorithm), nil))
	res, err := eng.ExecuteContext(ctx, q.q)
	if err != nil {
		return nil, err
	}
	out := newResults(pg, q.q, res)
	out.traceID = obs.FromContext(ctx).TraceID()
	return out, nil
}

// Peek reports whether a complete cached result for q is already stored,
// returning it without executing, waiting, or coalescing with in-flight
// runs. ok is false when the DB has no cache or the entry is absent — the
// caller then proceeds through Run/RunWithInfo as usual. Servers with
// admission control peek before queuing so warm requests are answered in
// microseconds instead of waiting behind analytical work; a successful
// peek counts as a cache hit in CacheStats.
func (db *DB) Peek(q *Query) (*Results, bool) {
	if db.cache == nil {
		return nil, false
	}
	key := qcache.Key{Graph: db.g.Snapshot().Fingerprint(), Query: q.String(), Opts: db.optsSig}
	v, ok := db.cache.Peek(key)
	if !ok {
		return nil, false
	}
	return v.(*Results), true
}

// CacheStats returns a snapshot of the DB's query-result cache counters;
// ok is false when the DB has no cache. Derived DBs (WithOptions, With)
// report the shared parent cache.
func (db *DB) CacheStats() (CacheStats, bool) {
	if db.cache == nil {
		return CacheStats{}, false
	}
	st := db.cache.Stats()
	return CacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Coalesced: st.Coalesced,
		Evictions: st.Evictions,
		Rejected:  st.Rejected,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
		MaxBytes:  st.MaxBytes,
	}, true
}

// QueryStream parses text and executes it, streaming connecting trees;
// see RunStream.
func (db *DB) QueryStream(ctx context.Context, text string, fn StreamFunc) (*Results, error) {
	q, err := ParseQuery(text)
	if err != nil {
		return nil, err
	}
	return db.RunStream(ctx, q, fn)
}

// StreamFunc receives connecting trees as a search finds them. ctp is the
// index of the CONNECT clause (in query order) the tree answers.
// Returning false stops that clause's search; the trees seen so far still
// flow into the final Results (flagged by Results.Truncated).
type StreamFunc func(ctp int, t *Tree) bool

// RunStream executes q like Run, additionally invoking fn on each
// connecting tree the moment the search finds it — before joins, LIMIT,
// or TOP-k trimming — so callers can render connections as they surface
// instead of waiting for the full enumeration. When the DB has
// Options.Parallel set and the query has several CONNECT clauses, fn may
// be called from several goroutines at once and must be safe for that.
// RunStream never consults the DB's cache: a cached result could not
// replay the per-tree callback.
func (db *DB) RunStream(ctx context.Context, q *Query, fn StreamFunc) (*Results, error) {
	pg := db.g.Snapshot()
	eng := engine.New(pg.view(), db.opts.engineOptions(
		mustAlgorithm(db.opts.Algorithm),
		func(ctp int, r core.Result) bool {
			return fn(ctp, &Tree{g: pg, t: r.Tree})
		}))
	res, err := eng.ExecuteContext(ctx, q.q)
	if err != nil {
		return nil, err
	}
	return newResults(pg, q.q, res), nil
}

// Explain returns the query plan the engine would run for q — the BGP
// access paths and join order, the derived CTP seed sets, and the chosen
// search configuration — without executing it. On a live graph the plan
// reflects the current epoch's statistics.
func (db *DB) Explain(q *Query) (string, error) {
	eng := engine.New(db.g.view(), db.opts.engineOptions(mustAlgorithm(db.opts.Algorithm), nil))
	return eng.Explain(q.q)
}

// Mutate applies one atomic batch to the DB's live graph and publishes
// the next epoch; see Graph.Mutate. Queries started before the call keep
// their pinned epoch; queries started after see the new one (and miss the
// cache, whose keys carry the per-epoch fingerprint). It fails on a DB
// over a frozen graph.
func (db *DB) Mutate(b Batch) (MutateResult, error) { return db.g.Mutate(b) }

// Snapshot returns a DB pinned to the current epoch: its queries answer
// from exactly this epoch's content forever, regardless of later Mutate
// calls on the parent. The snapshot DB shares the parent's cache, so
// queries already answered at this epoch are still warm. On a DB over a
// frozen graph it returns the receiver.
func (db *DB) Snapshot() *DB {
	if !db.g.IsLive() {
		return db
	}
	nd := *db
	nd.g = db.g.Snapshot()
	return &nd
}

// mustAlgorithm resolves a name already validated by Open.
func mustAlgorithm(name string) core.Algorithm {
	a, err := parseAlgorithm(name)
	if err != nil {
		panic(err)
	}
	return a
}
